package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/exitcode"
	"repro/internal/obs"
)

// --- Retry-After jitter -----------------------------------------------------

// Retry-After must spread retries, not synchronize them: the jitter is
// upward-only (a client told to come back sooner than the configured base
// would re-saturate the queue) and bounded by base*(1+jitter).
func TestRetryAfterJitterBounds(t *testing.T) {
	d := newTestDaemon(t, Options{Workers: 1, RetryAfter: 2 * time.Second})

	// Pinned extremes of the rnd source hit the bounds exactly.
	d.rnd = func() float64 { return 0 }
	if got := d.retryAfterSeconds(); got != 2 {
		t.Errorf("rnd=0: Retry-After = %d, want 2 (the base, never below it)", got)
	}
	d.rnd = func() float64 { return 1 }
	if got := d.retryAfterSeconds(); got != 3 {
		t.Errorf("rnd=1: Retry-After = %d, want 3 (= ceil(2s * 1.5))", got)
	}

	// Every draw lands in [base, ceil(base*1.5)], and with a base wide
	// enough to span several whole seconds the spread is real — a constant
	// Retry-After would stampede every backed-off client at once.
	dw := newTestDaemon(t, Options{Workers: 1, RetryAfter: 10 * time.Second})
	rnd := rand.New(rand.NewSource(1))
	dw.rnd = rnd.Float64
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		got := dw.retryAfterSeconds()
		if got < 10 || got > 15 {
			t.Fatalf("draw %d: Retry-After = %d, want in [10, 15]", i, got)
		}
		seen[got] = true
	}
	if len(seen) < 3 {
		t.Errorf("500 draws produced only %v; jitter is not spreading", seen)
	}

	// Negative jitter disables the spread for tests that need determinism.
	d2 := newTestDaemon(t, Options{Workers: 1, RetryAfter: 7 * time.Second, RetryJitter: -1})
	for i := 0; i < 10; i++ {
		if got := d2.retryAfterSeconds(); got != 7 {
			t.Fatalf("jitter disabled: Retry-After = %d, want exactly 7", got)
		}
	}
}

// --- hostile job IDs --------------------------------------------------------

// Job IDs become directory names under the store root; anything but a
// 32-char lowercase-hex handle must be refused before the filesystem is
// touched — including URL-encoded path separators (%2f, %5c), which a
// careless decode layer could later expand into a traversal.
func TestDiskStoreHostileJobIDs(t *testing.T) {
	root := t.TempDir()
	st, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	f, tr := chainProblem(3)

	hostile := []string{
		"",
		"..",
		"../..",
		"../../etc/passwd",
		"..%2f..%2fsecrets",
		"..%2F..%2Fsecrets",
		"jobs%5c..%5cconfig",
		"%2e%2e%2fescape",
		"ABCDEF0123456789ABCDEF0123456789",  // uppercase hex
		"0123456789abcdef0123456789abcde",   // 31 chars
		"0123456789abcdef0123456789abcdef0", // 33 chars
		"0123456789abcdef0123456789abcdeg",  // non-hex tail
		"0123456789abcdef.123456789abcdef",  // dot inside
		"0123456789abcdef/123456789abcdef",  // raw separator
	}
	for _, id := range hostile {
		if ValidJobID(id) {
			t.Errorf("ValidJobID(%q) = true, want false", id)
		}
		if err := st.Create(&Job{ID: id, Tenant: "t", Seq: 1}, f, tr); err == nil {
			t.Errorf("Create(%q) succeeded, want refusal", id)
		}
		if _, err := st.Job(id); err != ErrUnknownJob {
			t.Errorf("Job(%q) err = %v, want ErrUnknownJob", id, err)
		}
		if err := st.PutReplica(&Job{ID: id, Replica: true}, f, &JobResult{}, []byte("x")); err == nil {
			t.Errorf("PutReplica(%q) succeeded, want refusal", id)
		}
		if p := st.JournalPath(id); p != "" {
			t.Errorf("JournalPath(%q) = %q, want \"\"", id, p)
		}
	}

	// None of the attempts may have left anything behind — inside or outside
	// the jobs directory.
	ents, err := os.ReadDir(filepath.Join(root, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("hostile IDs left %d entries in the jobs dir", len(ents))
	}
	rents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rents) != 1 { // just "jobs"
		t.Fatalf("hostile IDs left debris in the store root: %v", rents)
	}

	// A well-formed ID still works, proving the gate rejects shapes, not use.
	id, err := NewJobID()
	if err != nil {
		t.Fatal(err)
	}
	if !ValidJobID(id) {
		t.Fatalf("NewJobID() = %q fails ValidJobID", id)
	}
	if err := st.Create(&Job{ID: id, Tenant: "t", Seq: 1}, f, tr); err != nil {
		t.Fatalf("Create(valid id): %v", err)
	}
}

// --- recovery over a mixed store -------------------------------------------

// A restarted daemon must requeue exactly the incomplete native jobs, in Seq
// order, exactly once — while the same directory also holds finished jobs,
// replica copies (complete and torn), and the debris of admissions a crash
// cut between Admit and the job.json commit point.
func TestRecoverOrderingMixedStore(t *testing.T) {
	root := t.TempDir()
	st, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	f, tr := chainProblem(3)

	mk := func(seq uint64) *Job {
		id, err := NewJobID()
		if err != nil {
			t.Fatal(err)
		}
		return &Job{ID: id, Tenant: "default", Seq: seq, NumVars: f.NumVars, NumClauses: f.NumClauses()}
	}

	// Incomplete native jobs, created out of Seq order (directory order is
	// random-hex order, so it cannot accidentally equal admission order).
	j5, j1, j3 := mk(5), mk(1), mk(3)
	for _, j := range []*Job{j5, j1, j3} {
		if err := st.Create(j, f, tr); err != nil {
			t.Fatal(err)
		}
	}

	// A finished job: present, never requeued.
	j2 := mk(2)
	if err := st.Create(j2, f, tr); err != nil {
		t.Fatal(err)
	}
	if err := st.SetResult(j2.ID, &JobResult{Status: StatusVerified, Code: exitcode.OK, Attempts: 1}); err != nil {
		t.Fatal(err)
	}

	// Aborted two-phase admissions: directories whose Create never reached
	// its job.json commit point. The client never saw a 202 for these.
	var aborted []string
	for i := 0; i < 2; i++ {
		id, err := NewJobID()
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(root, "jobs", id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "formula.cnf"), []byte("p cnf 1 1\n1 0\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		aborted = append(aborted, dir)
	}

	// A torn replica: job.json marked Replica, crash before result.json.
	torn := mk(7)
	torn.Replica = true
	tornDir := filepath.Join(root, "jobs", torn.ID)
	if err := os.MkdirAll(tornDir, 0o755); err != nil {
		t.Fatal(err)
	}
	tb, err := json.Marshal(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tornDir, "job.json"), tb, 0o644); err != nil {
		t.Fatal(err)
	}

	// A complete replica: kept, served, never requeued.
	rep := mk(8)
	rep.Replica = true
	if err := st.PutReplica(rep, f, &JobResult{Status: StatusVerified, Code: exitcode.OK, Attempts: 1}, []byte("lrat\n")); err != nil {
		t.Fatal(err)
	}

	// Reopen (the restart): sweep must clear the debris classes...
	st2, err := NewDiskStore(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range append(aborted, tornDir) {
		if _, err := os.Stat(dir); !os.IsNotExist(err) {
			t.Errorf("sweep left debris dir %s", dir)
		}
	}

	// ...and Recover must requeue exactly j1, j3, j5 in that order.
	d, err := New(Options{Store: st2, Workers: 1, Obs: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("Recover() = %d jobs, want 3", n)
	}
	d.q.mu.Lock()
	var got []string
	seen := map[string]int{}
	for _, j := range d.q.items {
		got = append(got, j.ID)
		seen[j.ID]++
	}
	d.q.mu.Unlock()
	want := []string{j1.ID, j3.ID, j5.ID}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("requeue order = %v, want Seq order %v", got, want)
	}
	for id, count := range seen {
		if count != 1 {
			t.Fatalf("job %s enqueued %d times", id, count)
		}
	}

	// Seq continuity: new admissions must not reuse recovered sequence
	// numbers (MaxSeq spans finished jobs and replicas too).
	if max, err := st2.MaxSeq(); err != nil || max != 8 {
		t.Fatalf("MaxSeq = %d, %v; want 8", max, err)
	}

	// The finished job and the replica still serve their results.
	for _, id := range []string{j2.ID, rep.ID} {
		jr, err := st2.Result(id)
		if err != nil || jr == nil || jr.Status != StatusVerified {
			t.Fatalf("Result(%s) = %+v, %v after restart", id, jr, err)
		}
	}
}

// --- replica acceptance -----------------------------------------------------

// corruptLastDigit flips the last nonzero digit of a textual LRAT proof —
// the smallest corruption that still parses but breaks a hint or literal.
func corruptLastDigit(t *testing.T, b []byte) []byte {
	t.Helper()
	out := append([]byte(nil), b...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] >= '1' && out[i] <= '9' {
			if out[i] == '9' {
				out[i] = '8'
			} else {
				out[i]++
			}
			return out
		}
	}
	t.Fatal("no nonzero digit found in LRAT proof")
	return nil
}

// A replica shard must re-verify an incoming verdict before acking it: the
// intact copy is accepted and served byte-identically; a copy with one
// corrupted hint digit is rejected with the typed replica_rejected status
// and leaves nothing in the store.
func TestReplicaPutValidatesBeforeAck(t *testing.T) {
	// Source daemon produces a genuine verdict + hinted proof.
	src := newTestDaemon(t, Options{Workers: 1})
	hs := src.Handler(false)
	f, tr := chainProblem(20)
	id := submitProblem(t, hs, f, tr, "")
	jr := waitDone(t, src, id)
	if jr.Status != StatusVerified {
		t.Fatalf("source verdict = %+v, want verified", jr)
	}
	lratRW := doRequest(hs, httptest.NewRequest("GET", "/v1/jobs/"+id+"/lrat", nil))
	if lratRW.Code != http.StatusOK {
		t.Fatalf("GET lrat = %d %s", lratRW.Code, lratRW.Body.String())
	}
	lratBytes := append([]byte(nil), lratRW.Body.Bytes()...)
	verdictJSON, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	fs, _ := encodeProblem(t, f, tr)

	put := func(h http.Handler, id, formula, verdict, lrat string) *httptest.ResponseRecorder {
		t.Helper()
		body, ct := multipartBody(t, map[string]string{"formula": formula, "verdict": verdict, "lrat": lrat})
		req := httptest.NewRequest("PUT", "/v1/replicas/"+id, body)
		req.Header.Set("Content-Type", ct)
		return doRequest(h, req)
	}

	// The intact copy is accepted...
	repStore := NewMemStore()
	rep := newTestDaemon(t, Options{Workers: 1, Store: repStore})
	hr := rep.Handler(false)
	if rw := put(hr, id, fs, string(verdictJSON), string(lratBytes)); rw.Code != http.StatusOK {
		t.Fatalf("replica put = %d %s, want 200", rw.Code, rw.Body.String())
	}

	// ...and served byte-identically: same verdict encoding, same proof.
	st, got, err := rep.Status(id)
	if err != nil || st != StateDone || got == nil {
		t.Fatalf("replica status = %v,%v,%v; want done with result", st, got, err)
	}
	wantJSON, _ := encodeJSON(jr)
	gotJSON, _ := encodeJSON(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("replica verdict drifted:\n%s\nvs\n%s", gotJSON, wantJSON)
	}
	l2 := doRequest(hr, httptest.NewRequest("GET", "/v1/jobs/"+id+"/lrat", nil))
	if l2.Code != http.StatusOK || !bytes.Equal(l2.Body.Bytes(), lratBytes) {
		t.Fatalf("replica lrat = %d, byte-identical=%v", l2.Code, bytes.Equal(l2.Body.Bytes(), lratBytes))
	}

	// The replica can re-verify its copy on demand (no DRUP trace needed).
	if rw := doRequest(hr, httptest.NewRequest("POST", "/v1/jobs/"+id+"/recheck", nil)); rw.Code != http.StatusOK {
		t.Fatalf("replica recheck = %d %s", rw.Code, rw.Body.String())
	}

	// Replica records are copies, not runnable work.
	if inc, err := repStore.Incomplete(); err != nil || len(inc) != 0 {
		t.Fatalf("Incomplete() = %v, %v; replica must not be recoverable work", inc, err)
	}

	// Re-PUT (a retrying router) is idempotent.
	if rw := put(hr, id, fs, string(verdictJSON), string(lratBytes)); rw.Code != http.StatusOK {
		t.Fatalf("replica re-put = %d, want 200", rw.Code)
	}

	// One corrupted hint digit: typed rejection, nothing stored, no ack.
	bad := corruptLastDigit(t, lratBytes)
	rej := newTestDaemon(t, Options{Workers: 1})
	hj := rej.Handler(false)
	rw := put(hj, id, fs, string(verdictJSON), string(bad))
	if rw.Code != http.StatusUnprocessableEntity {
		t.Fatalf("corrupted replica put = %d %s, want 422", rw.Code, rw.Body.String())
	}
	var er errorResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &er); err != nil || er.Status != StatusReplicaRejected {
		t.Fatalf("corrupted replica error = %+v, want status %s", er, StatusReplicaRejected)
	}
	if _, err := rej.opt.Store.Job(id); err != ErrUnknownJob {
		t.Fatalf("corrupted replica left a record: Job err = %v, want ErrUnknownJob", err)
	}

	// Only verified verdicts travel; anything else is recomputed instead.
	nv, _ := json.Marshal(&JobResult{Status: StatusTimeout, Code: exitcode.Timeout, Attempts: 1})
	if rw := put(hj, id, fs, string(nv), string(lratBytes)); rw.Code != http.StatusUnprocessableEntity {
		t.Fatalf("non-verified replica put = %d, want 422", rw.Code)
	}

	// Hostile IDs are refused at the door.
	if rw := put(hj, "..%2f..%2fowned", fs, string(verdictJSON), string(lratBytes)); rw.Code != http.StatusBadRequest {
		t.Fatalf("hostile-id replica put = %d, want 400", rw.Code)
	}

	// A shard that owns the job natively refuses the overwrite.
	if rw := put(hs, id, fs, string(verdictJSON), string(lratBytes)); rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("native-job replica put = %d, want 503 refusal", rw.Code)
	}
}
