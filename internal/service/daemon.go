// Package service implements dpvd, the verification-as-a-service daemon: a
// long-running HTTP front end over the paper's proof verifier with the
// fault-tolerance properties a shared deployment needs — bounded admission
// queues with per-tenant quotas and Retry-After backpressure, per-job
// deadlines and resource budgets, worker panic isolation with one
// fallback-engine retry, graceful drain on SIGTERM, and (with the
// disk-backed store) kill-9 crash recovery that resumes interrupted jobs
// from their checkpoint journals and reproduces verdicts byte-identical to
// an uninterrupted run.
//
// The package deliberately reuses the CLI's building blocks rather than
// reimplementing them: admission parses through the limited parsers
// (internal/cnf, internal/proof), outcomes are classified by the shared
// exit-code contract (internal/exitcode), durability rides on
// internal/journal and internal/atomicio, and the verdict JSON is the same
// shape dpv -json prints. A client migrating from "shell out to dpv" to
// "POST to dpvd" keeps its entire outcome taxonomy.
package service

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/retry"
)

// Options configures a Daemon. The zero value of most fields picks a
// production-sane default; Store is the only required field.
type Options struct {
	// Store persists jobs and results (required).
	Store Store

	// Workers is the number of concurrent verification workers (default 2).
	Workers int
	// QueueCap bounds the admission queue across all tenants (default 64).
	QueueCap int
	// DefaultQuota applies to tenants without an entry in Quotas. Zero
	// fields default to MaxQueued=QueueCap, MaxRunning=Workers, Budget from
	// Options.Budget — i.e. single-tenant deployments need not configure
	// quotas at all.
	DefaultQuota TenantQuota
	// Quotas overrides DefaultQuota per tenant name.
	Quotas map[string]TenantQuota

	// JobTimeout bounds each verification run (0 = unlimited).
	JobTimeout time.Duration
	// Budget is the default per-job resource budget (zero = unlimited).
	Budget core.Budget

	// Mode and Engine select the verification procedure, as in dpv.
	Mode   core.Mode
	Engine core.EngineKind
	// CheckpointEvery is the journal interval in proof clauses for stores
	// with a JournalPath (default 1000; set negative to disable).
	CheckpointEvery int

	// FormulaLimits/ProofLimits bound what admission accepts; zero fields
	// take the parsers' defaults.
	FormulaLimits cnf.ParseLimits
	ProofLimits   proof.Limits
	// MaxUploadBytes bounds a whole upload body (default 256 MiB).
	MaxUploadBytes int64

	// RetryAfter is the base hint returned with 429/503 responses (default
	// 2s). The served value is jittered upward by RetryJitter so a fleet
	// of backpressured clients does not retry in lockstep.
	RetryAfter time.Duration
	// RetryJitter is the fraction of RetryAfter the hint is spread over:
	// each response advertises a value uniform in
	// [RetryAfter, RetryAfter*(1+RetryJitter)], rounded up to whole
	// seconds. Default 0.5; negative disables jitter (deterministic hints,
	// used by tests asserting exact headers).
	RetryJitter float64

	// Obs receives service metrics; nil disables instrumentation.
	Obs *obs.Registry
	// SinkWrap, when non-nil, wraps every checkpoint-journal sink — the
	// hook the kill-and-recover harness uses (cmd/internal/ckpt.CrashSink).
	SinkWrap func(func([]byte) error) func([]byte) error
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() (Options, error) {
	if o.Store == nil {
		return o, fmt.Errorf("service: Options.Store is required")
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 1000
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 256 << 20
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.RetryJitter == 0 {
		o.RetryJitter = 0.5
	} else if o.RetryJitter < 0 {
		o.RetryJitter = 0
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	def := o.DefaultQuota
	if def.MaxQueued <= 0 {
		def.MaxQueued = o.QueueCap
	}
	if def.MaxRunning <= 0 {
		def.MaxRunning = o.Workers
	}
	o.DefaultQuota = def.withDefaults(TenantQuota{Budget: o.Budget})
	return o, nil
}

// Daemon is the verification service. Construct with New, then Recover
// (optional but recommended), then Start; stop with Drain.
type Daemon struct {
	opt Options
	q   *queue

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.RWMutex
	states  map[string]State
	results map[string]*JobResult // verdict cache; survives SetResult failure
	seq     uint64
	started bool

	// rnd drives Retry-After jitter; swapped for a deterministic source in
	// tests that assert the hint bounds.
	rnd func() float64

	draining  chan struct{} // closed when Drain begins
	drainOnce sync.Once
}

// New builds a Daemon from opt without starting any workers.
func New(opt Options) (*Daemon, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		opt:      opt,
		states:   make(map[string]State),
		results:  make(map[string]*JobResult),
		draining: make(chan struct{}),
		rnd:      rand.Float64,
	}
	d.q = newQueue(opt.QueueCap, d.quotaFor)
	d.ctx, d.cancel = context.WithCancel(context.Background())
	if seq, err := opt.Store.MaxSeq(); err == nil {
		d.seq = seq
	}
	return d, nil
}

func (d *Daemon) quotaFor(tenant string) TenantQuota {
	if q, ok := d.opt.Quotas[tenant]; ok {
		return q.withDefaults(d.opt.DefaultQuota)
	}
	return d.opt.DefaultQuota
}

// Recover scans the store for jobs admitted but not finished — the survivors
// of a crash or an unfinished drain — and re-queues them in admission order.
// Each re-run resumes from its checkpoint journal when that validates, so
// recovered verdicts are byte-identical to uninterrupted ones (the
// checkpoint determinism contract in internal/core/checkpoint.go). Call
// before Start so recovered jobs precede new admissions.
func (d *Daemon) Recover() (int, error) {
	jobs, err := d.opt.Store.Incomplete()
	if err != nil {
		return 0, fmt.Errorf("service: recovery scan: %w", err)
	}
	d.mu.Lock()
	for _, j := range jobs {
		d.states[j.ID] = StateQueued
	}
	d.mu.Unlock()
	d.q.Requeue(jobs)
	if len(jobs) > 0 {
		d.opt.Logf("service: recovered %d incomplete job(s)", len(jobs))
		d.opt.Obs.Counter("service.jobs_recovered").Add(int64(len(jobs)))
	}
	return len(jobs), nil
}

// Start launches the worker pool.
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.mu.Unlock()
	for w := 0; w < d.opt.Workers; w++ {
		d.wg.Add(1)
		go d.worker(w)
	}
}

// Drain stops the daemon gracefully: admission closes immediately (new
// submissions get 503), queued jobs stay in the store for the next start,
// and in-flight jobs are cancelled so they flush a final checkpoint record
// and stop. Drain returns when every worker has exited or ctx expires.
func (d *Daemon) Drain(ctx context.Context) error {
	d.drainOnce.Do(func() {
		close(d.draining)
		d.q.Close()
		d.cancel()
	})
	done := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (d *Daemon) Draining() bool {
	select {
	case <-d.draining:
		return true
	default:
		return false
	}
}

// Submit admits a parsed job for tenant: it reserves a queue slot under the
// capacity and quota bounds, makes the job durable in the store, and only
// then enqueues it. The returned Job is already visible to Status.
func (d *Daemon) Submit(tenant string, f *cnf.Formula, tr *proof.Trace) (*Job, error) {
	return d.SubmitID(tenant, "", f, tr)
}

// SubmitID is Submit with a caller-chosen job ID — the cluster router mints
// IDs so it can consistent-hash them onto shards before any shard is
// contacted. Admission with an ID the store already holds is idempotent:
// the existing job is returned with ErrAlreadyAdmitted and nothing is
// enqueued, which is what makes the router's retry loop safe (a re-POST
// after a lost response cannot double-run a job). An empty id mints one.
func (d *Daemon) SubmitID(tenant, id string, f *cnf.Formula, tr *proof.Trace) (*Job, error) {
	if id != "" && !ValidJobID(id) {
		return nil, fmt.Errorf("%w: malformed job id", ErrBadJobID)
	}
	if err := d.q.Admit(tenant); err != nil {
		switch err {
		case ErrQueueFull:
			d.opt.Obs.Counter("service.rejected_queue_full").Inc()
		case ErrTenantBusy:
			d.opt.Obs.Counter("service.rejected_tenant_busy").Inc()
		case ErrDraining:
			d.opt.Obs.Counter("service.rejected_draining").Inc()
		}
		return nil, err
	}
	if id == "" {
		var err error
		if id, err = NewJobID(); err != nil {
			d.q.Release(tenant)
			return nil, err
		}
	} else if job, err := d.opt.Store.Job(id); err == nil {
		// Idempotent re-admission: the job exists (admitted by a previous
		// attempt, possibly already done); the reserved slot goes back.
		d.q.Release(tenant)
		d.opt.Obs.Counter("service.readmissions_deduped").Inc()
		return job, ErrAlreadyAdmitted
	}
	d.mu.Lock()
	d.seq++
	seq := d.seq
	d.mu.Unlock()
	job := &Job{
		ID:           id,
		Tenant:       tenant,
		Seq:          seq,
		NumVars:      f.NumVars,
		NumClauses:   f.NumClauses(),
		ProofClauses: tr.Len(),
	}
	if err := d.opt.Store.Create(job, f, tr); err != nil {
		// Admission never half-succeeds: the slot goes back, the client
		// gets a retryable error, and the store holds nothing.
		d.q.Release(tenant)
		d.opt.Obs.Counter("service.store_create_errors").Inc()
		return nil, fmt.Errorf("service: admit: %w", err)
	}
	d.mu.Lock()
	d.states[id] = StateQueued
	d.mu.Unlock()
	d.q.Enqueue(job)
	d.opt.Obs.Counter("service.jobs_admitted").Inc()
	return job, nil
}

// Status returns a job's current state and, when done, its result. The
// result is served from the in-memory cache first — a verdict outlives a
// store whose result write failed (disk full) — then from the store, which
// also covers jobs finished before a restart.
func (d *Daemon) Status(id string) (State, *JobResult, error) {
	d.mu.RLock()
	st, known := d.states[id]
	jr := d.results[id]
	d.mu.RUnlock()
	if jr != nil {
		return StateDone, jr, nil
	}
	jr, err := d.opt.Store.Result(id)
	if err == ErrUnknownJob && known {
		// In-memory state without a store record can only mean the store
		// lost it; report what we know rather than 404ing a job we admitted.
		return st, nil, nil
	}
	if err != nil {
		return "", nil, err
	}
	if jr != nil {
		return StateDone, jr, nil
	}
	if !known {
		// Known to the store, not to this process: admitted by a previous
		// incarnation and pending recovery.
		st = StateQueued
	}
	return st, nil, nil
}

// Live is the /healthz probe: the process is alive iff it can answer at
// all, so this only fails once drain has begun (tell orchestrators to stop
// waiting on a process that is already leaving).
func (d *Daemon) Live() error {
	if d.Draining() {
		return ErrDraining
	}
	return nil
}

// Ready is the /readyz probe: ready to take traffic means not draining, a
// writable store, and admission headroom.
func (d *Daemon) Ready() error {
	if d.Draining() {
		return ErrDraining
	}
	if err := d.opt.Store.Ping(); err != nil {
		return err
	}
	if d.q.Saturated() {
		return fmt.Errorf("%w (%d queued)", ErrQueueFull, d.q.Depth())
	}
	return nil
}

// retryAfterSeconds renders one jittered Retry-After hint: uniform in
// [RetryAfter, RetryAfter*(1+RetryJitter)] whole seconds. Each call draws a
// fresh value, so simultaneous rejections advertise different hints — the
// anti-stampede property the bounds are tested for.
func (d *Daemon) retryAfterSeconds() int {
	return retry.JitterSeconds(d.opt.RetryAfter, d.opt.RetryJitter, d.rnd)
}

func (d *Daemon) setState(id string, st State) {
	d.mu.Lock()
	d.states[id] = st
	d.mu.Unlock()
}
