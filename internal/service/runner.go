package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/lrat"
	"repro/internal/proof"
)

// worker pulls jobs until the queue closes. A worker goroutine never dies:
// every panic path inside runJob is recovered and turned into a typed
// result, so a poisonous job costs its own verdict, not a worker slot.
func (d *Daemon) worker(w int) {
	defer d.wg.Done()
	for {
		job, ok := d.q.Dequeue()
		if !ok {
			return
		}
		d.runJob(w, job)
	}
}

// runJob drives one job start to finish: load artifacts, verify (with
// checkpointing, panic isolation and one fallback-engine retry), record the
// terminal result. The only path that ends without a result is drain — the
// job then stays incomplete in the store for the next start to recover.
func (d *Daemon) runJob(w int, job *Job) {
	defer d.q.Done(job.Tenant)
	defer func() {
		// Last-resort isolation for panics outside the verification call
		// itself (store IO, result assembly): the worker survives and the
		// job gets an internal_error verdict instead of hanging forever.
		if r := recover(); r != nil {
			d.opt.Obs.Counter("service.worker_panics").Inc()
			d.opt.Logf("service: worker %d: panic on job %s: %v\n%s", w, job.ID, r, debug.Stack())
			d.finish(job, &JobResult{
				Status:   StatusInternal,
				Code:     StatusInternal.ExitCode(),
				Error:    fmt.Sprintf("worker panic: %v", r),
				Attempts: 1,
			})
		}
	}()
	d.setState(job.ID, StateRunning)

	f, tr, err := d.opt.Store.Artifacts(job.ID)
	if err != nil {
		d.finish(job, &JobResult{
			Status:   StatusInternal,
			Code:     StatusInternal.ExitCode(),
			Error:    fmt.Sprintf("load artifacts: %v", err),
			Attempts: 1,
		})
		return
	}

	budget := d.quotaFor(job.Tenant).Budget
	res, rec, engine, attempts, verr := d.verifyJob(w, job, f, tr, budget)

	if verr != nil && errors.Is(verr, core.ErrCancelled) && d.Draining() {
		// Drain, not an outcome: the final journal record is already
		// flushed; the job stays incomplete for the next start.
		d.setState(job.ID, StateQueued)
		d.opt.Obs.Counter("service.jobs_drained").Inc()
		return
	}

	jr := &JobResult{Status: statusOf(res, verr), Attempts: attempts}
	jr.Code = jr.Status.ExitCode()
	if verr != nil {
		jr.Error = verr.Error()
	} else {
		v := BuildVerdict(res, d.opt.Mode, engine, 0, job.NumClauses)
		jr.Verdict = &v
		if res.OK {
			jr.Core = res.Core
			// Persist the hinted proof before the result commit point, so a
			// done verified job always has its hints; a failure here costs
			// the cheap-recheck capability, never the verdict.
			d.storeLRAT(job, rec)
		}
	}
	d.finish(job, jr)
}

// storeLRAT renders and persists a verified job's recorded hints.
func (d *Daemon) storeLRAT(job *Job, rec *lrat.Recorder) {
	if rec == nil {
		return
	}
	lp, err := rec.Proof()
	if err == nil {
		var buf bytes.Buffer
		if err = lrat.Write(&buf, lp); err == nil {
			err = d.opt.Store.SetLRAT(job.ID, buf.Bytes())
		}
	}
	if err != nil {
		d.opt.Obs.Counter("service.lrat_store_errors").Inc()
		d.opt.Logf("service: job %s: hinted proof not stored (%v); recheck unavailable", job.ID, err)
	}
}

// finish records a terminal result. The in-memory cache is written first
// and unconditionally: a verdict that cost minutes of BCP survives a store
// whose disk filled up — the job then simply stays incomplete on disk and
// is recomputed (cheaply, from its journal) after a restart, rather than
// being lost.
func (d *Daemon) finish(job *Job, jr *JobResult) {
	d.mu.Lock()
	d.results[job.ID] = jr
	d.states[job.ID] = StateDone
	d.mu.Unlock()
	if err := d.opt.Store.SetResult(job.ID, jr); err != nil {
		d.opt.Obs.Counter("service.store_result_errors").Inc()
		d.opt.Logf("service: job %s: result not durable (%v); serving from memory", job.ID, err)
		return
	}
	d.opt.Obs.Counter("service.jobs_completed").Inc()
}

// fallbackEngineFor mirrors the parallel verifier's panic-retry policy: a
// structurally different BCP implementation, so a data-dependent defect in
// one engine does not doom the job.
func fallbackEngineFor(k core.EngineKind) core.EngineKind {
	if k == core.EngineCounting {
		return core.EngineWatched
	}
	return core.EngineCounting
}

// verifyJob runs verification with at most one fallback-engine retry after
// a panic. Any second panic — or any non-panic error — is final. It returns
// the engine that produced the result so the verdict names the right one,
// and the attempt's hint recorder (fresh per attempt, so a retried run
// never carries the panicked attempt's partial records).
func (d *Daemon) verifyJob(w int, job *Job, f *cnf.Formula, tr *proof.Trace, budget core.Budget) (*core.Result, *lrat.Recorder, core.EngineKind, int, error) {
	engine := d.opt.Engine
	for attempt := 1; ; attempt++ {
		rec := new(lrat.Recorder)
		res, err := d.verifyOnce(w, job, f, tr, budget, engine, attempt, rec)
		var pe *core.WorkerPanicError
		if errors.As(err, &pe) && attempt == 1 {
			d.opt.Obs.Counter("service.worker_panics").Inc()
			fb := fallbackEngineFor(engine)
			d.opt.Logf("service: job %s: %v engine panicked (%v); retrying once on %v",
				job.ID, engine, pe.Value, fb)
			engine = fb
			continue
		}
		return res, rec, engine, attempt, err
	}
}

// verifyOnce performs a single verification attempt under the daemon's
// lifetime context plus the per-job deadline, checkpointing to the store's
// journal when it offers one. Journal failures only ever degrade durability
// — the attempt itself proceeds and its verdict stands.
func (d *Daemon) verifyOnce(w int, job *Job, f *cnf.Formula, tr *proof.Trace, budget core.Budget, engine core.EngineKind, attempt int, rec *lrat.Recorder) (res *core.Result, verr error) {
	ctx := d.ctx
	if d.opt.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.opt.JobTimeout)
		defer cancel()
	}
	opt := core.Options{
		Mode:   d.opt.Mode,
		Engine: engine,
		Ctx:    ctx,
		Budget: budget,
		Obs:    d.opt.Obs,
		Hints:  rec,
	}

	var jw *journal.Writer
	if jpath := d.opt.Store.JournalPath(job.ID); jpath != "" && d.opt.CheckpointEvery > 0 {
		meta := journal.Meta{
			Kind:      journal.KindVerifySeq,
			Mode:      uint8(opt.Mode),
			Engine:    uint8(engine),
			Interval:  uint32(d.opt.CheckpointEvery),
			FormulaFP: journal.FingerprintFormula(f),
			ProofFP:   journal.FingerprintTrace(tr),
		}
		// Resume from a previous incarnation's journal when it validates;
		// every failure mode degrades to a full re-run, never a wrong
		// verdict. (After a fallback-engine retry the meta differs, so a
		// stale primary-engine journal is rejected here by design.)
		var resumeCp *core.Checkpoint
		var resumePayload []byte
		if payload, jerr := journal.Open(jpath, meta, d.opt.Obs); jerr == nil {
			cp, derr := core.DecodeCheckpoint(payload)
			if derr == nil {
				derr = cp.ValidateFor(f.NumClauses(), tr.Len(), 0)
			}
			if derr == nil && cp.Hints == nil {
				// A journal from before hint recording: resuming would leave
				// the verified prefix without hints, so re-run instead.
				derr = fmt.Errorf("checkpoint carries no hint recorder")
			}
			if derr == nil {
				resumeCp, resumePayload = cp, payload
				d.opt.Obs.Counter("service.jobs_resumed").Inc()
				d.opt.Logf("service: job %s: resuming from checkpoint at clause %d", job.ID, cp.NextIndex)
			} else {
				d.opt.Logf("service: job %s: not resuming (%v); running from scratch", job.ID, derr)
			}
		} else if !errors.Is(jerr, journal.ErrNoJournal) {
			d.opt.Logf("service: job %s: not resuming (%v); running from scratch", job.ID, jerr)
		}
		if wr, jerr := journal.Create(jpath, meta, d.opt.Obs); jerr != nil {
			d.opt.Obs.Counter("service.journal_degraded").Inc()
			d.opt.Logf("service: job %s: checkpointing disabled (%v)", job.ID, jerr)
		} else {
			jw = wr
			defer jw.Close()
			if resumePayload != nil {
				// Re-append the resumed record so no durable progress is
				// lost; on failure the resume state is still held in memory
				// and a crash before the next checkpoint merely re-runs.
				if aerr := jw.Append(resumePayload); aerr != nil {
					d.opt.Obs.Counter("service.journal_degraded").Inc()
					d.opt.Logf("service: job %s: journal append failed (%v); durability degraded", job.ID, aerr)
				}
			}
			sink := jw.Append
			if d.opt.SinkWrap != nil {
				sink = d.opt.SinkWrap(sink)
			}
			opt.Checkpoint = core.CheckpointConfig{
				Every:  d.opt.CheckpointEvery,
				Sink:   d.degradingSink(job.ID, sink),
				Resume: resumeCp,
			}
		}
	}

	func() {
		defer func() {
			if r := recover(); r != nil {
				res = nil
				verr = &core.WorkerPanicError{
					Worker:   w,
					Lo:       0,
					Hi:       tr.Len(),
					Attempts: attempt,
					Value:    r,
					Stack:    debug.Stack(),
				}
			}
		}()
		res, verr = core.Verify(f, tr, opt)
	}()

	if jw != nil {
		if verr == nil {
			// A verdict was reached; the journal is stale by definition.
			if rerr := jw.Remove(); rerr != nil {
				d.opt.Logf("service: job %s: journal remove: %v", job.ID, rerr)
			}
		} else if res != nil && res.Incomplete {
			note := fmt.Sprintf("incomplete stopped_at=%d tested=%d err=%v", res.StoppedAt, res.Tested, verr)
			if ferr := jw.AppendFinal([]byte(note)); ferr != nil {
				d.opt.Logf("service: job %s: journal final record: %v", job.ID, ferr)
			}
		}
	}
	return res, verr
}

// degradingSink wraps a journal sink so an IO failure (a dying disk under
// the store) costs durability, not the verdict: core.Verify aborts the run
// when its checkpoint sink errors, so the first failure here switches the
// sink off for the rest of the run instead of propagating. The checkpoint
// grid itself (engine rebuilds at epoch boundaries) is unaffected, so the
// produced verdict stays byte-identical either way.
func (d *Daemon) degradingSink(id string, sink func([]byte) error) func([]byte) error {
	failed := false
	return func(p []byte) error {
		if failed {
			return nil
		}
		if err := sink(p); err != nil {
			failed = true
			d.opt.Obs.Counter("service.journal_degraded").Inc()
			d.opt.Logf("service: job %s: checkpoint append failed (%v); continuing without durability", id, err)
		}
		return nil
	}
}
