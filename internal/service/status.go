package service

import (
	"repro/internal/core"
	"repro/internal/exitcode"
)

// Status is the API's outcome classification. It is the exit-code contract
// with names: every Status corresponds to exactly one dpv exit code, so the
// daemon and the CLI report the same taxonomy through different transports.
type Status string

const (
	// StatusVerified: the proof is a correct proof of unsatisfiability.
	StatusVerified Status = "verified"
	// StatusRejected: well-formed input, but a proof clause failed its
	// reverse-unit-propagation check.
	StatusRejected Status = "rejected"
	// StatusBadInput: the formula or proof was malformed, over the parser
	// limits, or structurally broken (e.g. no terminating clause).
	StatusBadInput Status = "bad_input"
	// StatusTimeout: the per-job deadline expired before a verdict.
	StatusTimeout Status = "timeout"
	// StatusBudget: a resource budget (propagations, memory estimate) was
	// exhausted before a verdict.
	StatusBudget Status = "budget_exhausted"
	// StatusInterrupted: the run was cancelled (daemon drain reached its
	// own deadline with the job still on a worker).
	StatusInterrupted Status = "interrupted"
	// StatusInternal: a defect in the verifier itself — a worker panic that
	// survived the fallback retry, or a failed artifact write.
	StatusInternal Status = "internal_error"
	// StatusReplicaRejected: an incoming verdict copy (PUT /v1/replicas/{id})
	// whose hinted proof failed re-verification on this node. The copy was
	// not stored and not acked — the replicating router must treat the
	// transfer as failed.
	StatusReplicaRejected Status = "replica_rejected"
)

// ExitCode returns the dpv exit code this status maps to.
func (s Status) ExitCode() int {
	switch s {
	case StatusVerified:
		return exitcode.OK
	case StatusRejected, StatusReplicaRejected:
		return exitcode.VerifyFailed
	case StatusBadInput:
		return exitcode.BadInput
	case StatusTimeout:
		return exitcode.Timeout
	case StatusBudget:
		return exitcode.Budget
	case StatusInterrupted:
		return exitcode.Interrupted
	default:
		return exitcode.Internal
	}
}

// statusOf classifies a core.Verify outcome. A nil error is a verdict —
// verified or rejected by Result.OK; everything else routes through the
// same typed-error mapping the CLI exit path uses, so the two surfaces can
// never drift apart.
func statusOf(res *core.Result, err error) Status {
	if err == nil {
		if res != nil && res.OK {
			return StatusVerified
		}
		return StatusRejected
	}
	switch exitcode.FromVerifyError(err) {
	case exitcode.Timeout:
		return StatusTimeout
	case exitcode.Budget:
		return StatusBudget
	case exitcode.BadInput:
		return StatusBadInput
	case exitcode.Interrupted:
		return StatusInterrupted
	default:
		return StatusInternal
	}
}
