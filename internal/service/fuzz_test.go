package service

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// fuzzBoundary is the fixed multipart boundary for the fuzz corpus, so the
// body bytes alone determine the request.
const fuzzBoundary = "dpvd-fuzz-boundary"

var (
	fuzzOnce   sync.Once
	fuzzDaemon *Daemon
	fuzzHandle http.Handler
)

// fuzzSetup builds one small shared daemon for all fuzz iterations. Tight
// limits keep accepted jobs cheap; the queue filling up (429) is itself an
// accepted outcome.
func fuzzSetup(tb testing.TB) http.Handler {
	fuzzOnce.Do(func() {
		d, err := New(Options{
			Store:          NewMemStore(),
			Workers:        2,
			QueueCap:       32,
			FormulaLimits:  cnf.ParseLimits{MaxVars: 64, MaxClauses: 256, MaxClauseLen: 64, MaxBytes: 1 << 16},
			ProofLimits:    proof.Limits{MaxClauses: 256, MaxClauseLen: 64, MaxVar: 64, MaxBytes: 1 << 16},
			MaxUploadBytes: 1 << 16,
		})
		if err != nil {
			tb.Fatal(err)
		}
		d.Start()
		fuzzDaemon = d
		fuzzHandle = d.Handler(false)
	})
	return fuzzHandle
}

func fuzzSeedBody(parts map[string]string) []byte {
	var buf bytes.Buffer
	for name, content := range parts {
		buf.WriteString("--" + fuzzBoundary + "\r\n")
		buf.WriteString("Content-Disposition: form-data; name=\"" + name + "\"; filename=\"" + name + "\"\r\n")
		buf.WriteString("Content-Type: application/octet-stream\r\n\r\n")
		buf.WriteString(content)
		buf.WriteString("\r\n")
	}
	buf.WriteString("--" + fuzzBoundary + "--\r\n")
	return buf.Bytes()
}

// FuzzUpload throws arbitrary multipart bodies at the admission gate. The
// contract under any input: a typed HTTP status from the expected set, no
// panic, and the daemon still serving afterwards.
func FuzzUpload(f *testing.F) {
	formula := "p cnf 3 4\n1 0\n-1 2 0\n-2 3 0\n-3 0\n"
	trace := "2 0\n3 0\n-3 0\n"
	f.Add(fuzzSeedBody(map[string]string{"formula": formula, "proof": trace}))
	f.Add(fuzzSeedBody(map[string]string{"formula": formula}))
	f.Add(fuzzSeedBody(map[string]string{"proof": trace}))
	f.Add(fuzzSeedBody(map[string]string{"formula": "p cnf 1 1\n1 0\n", "proof": "0\n"}))
	f.Add(fuzzSeedBody(map[string]string{"formula": formula, "proof": "1 2 3\n"}))
	f.Add(fuzzSeedBody(map[string]string{"formula": "garbage", "proof": "garbage"}))
	full := fuzzSeedBody(map[string]string{"formula": formula, "proof": trace})
	f.Add(full[:len(full)/2]) // truncated mid-stream
	f.Add([]byte(""))
	f.Add([]byte("--" + fuzzBoundary + "--\r\n"))

	allowed := map[int]bool{
		http.StatusAccepted:              true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusUnprocessableEntity:   true,
		http.StatusTooManyRequests:       true,
		http.StatusServiceUnavailable:    true,
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzSetup(t)
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "multipart/form-data; boundary="+fuzzBoundary)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if !allowed[rw.Code] {
			t.Fatalf("upload produced status %d (body %q)", rw.Code, rw.Body.String())
		}
		// Still alive.
		lw := httptest.NewRecorder()
		h.ServeHTTP(lw, httptest.NewRequest("GET", "/healthz", nil))
		if lw.Code != http.StatusOK {
			t.Fatalf("daemon unhealthy after upload: %d", lw.Code)
		}
	})
}
