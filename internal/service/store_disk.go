package service

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/cnf"
	"repro/internal/proof"
)

// DiskStore is the crash-recoverable Store: one directory per job under
// root/jobs/, every file written through internal/atomicio (temp + fsync +
// rename), so each job is always in exactly one of three observable states:
//
//	absent            — admission never completed (a half-written directory
//	                    without job.json is garbage-collected at startup)
//	incomplete        — job.json + artifacts exist, result.json does not;
//	                    the restart path re-runs these, resuming from
//	                    ck.dpvj when the checkpoint journal validates
//	done              — result.json exists; immutable
//
// job.json is written last during Create and result.json is a single atomic
// rename, which makes those two files the commit points the Store contract
// requires.
type DiskStore struct {
	root string
}

// NewDiskStore opens (creating if needed) a disk-backed store rooted at
// dir and removes debris from admissions a crash cut short.
func NewDiskStore(dir string) (*DiskStore, error) {
	s := &DiskStore{root: dir}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("service: disk store: %w", err)
	}
	if err := s.sweep(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *DiskStore) jobsDir() string      { return filepath.Join(s.root, "jobs") }
func (s *DiskStore) dir(id string) string { return filepath.Join(s.jobsDir(), id) }

// validID guards the "job ID as directory name" mapping: IDs are lowercase
// hex from NewJobID, and anything else — path separators, dots, and their
// URL-encoded spellings — is refused before touching the filesystem (see
// ValidJobID for the full hostile-ID policy).
func validID(id string) bool { return ValidJobID(id) }

// sweep removes job directories without a job.json — the leftovers of a
// Create interrupted before its commit point. The client never saw a 202
// for these, so deleting them loses nothing. Replica records interrupted
// before their result.json commit point are debris of the same class: the
// replicating router never got an ack, so it will re-replicate; a partial
// copy must not linger looking like a job.
func (s *DiskStore) sweep() error {
	ents, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return err
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir(e.Name()), "job.json")); os.IsNotExist(err) {
			if rerr := os.RemoveAll(s.dir(e.Name())); rerr != nil {
				return rerr
			}
			continue
		}
		job, err := s.Job(e.Name())
		if err != nil || !job.Replica {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir(e.Name()), "result.json")); os.IsNotExist(err) {
			if rerr := os.RemoveAll(s.dir(e.Name())); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

func (s *DiskStore) Create(job *Job, f *cnf.Formula, tr *proof.Trace) error {
	if !validID(job.ID) {
		return fmt.Errorf("service: invalid job id %q", job.ID)
	}
	dir := s.dir(job.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	commit := func() error {
		err := atomicio.WriteFile(filepath.Join(dir, "formula.cnf"), func(w io.Writer) error {
			return cnf.WriteDimacs(w, f)
		})
		if err != nil {
			return err
		}
		err = atomicio.WriteFile(filepath.Join(dir, "proof.trace"), func(w io.Writer) error {
			return proof.Write(w, tr)
		})
		if err != nil {
			return err
		}
		// job.json last: its appearance is what makes the job exist.
		return atomicio.WriteFile(filepath.Join(dir, "job.json"), func(w io.Writer) error {
			b, err := encodeJSON(job)
			if err != nil {
				return err
			}
			_, err = w.Write(b)
			return err
		})
	}
	if err := commit(); err != nil {
		// Leave nothing behind: a failed admission must be state "absent",
		// not a half-directory the client could never query.
		os.RemoveAll(dir)
		return err
	}
	return nil
}

func (s *DiskStore) Job(id string) (*Job, error) {
	if !validID(id) {
		return nil, ErrUnknownJob
	}
	b, err := os.ReadFile(filepath.Join(s.dir(id), "job.json"))
	if os.IsNotExist(err) {
		return nil, ErrUnknownJob
	}
	if err != nil {
		return nil, err
	}
	var job Job
	if err := json.Unmarshal(b, &job); err != nil {
		return nil, fmt.Errorf("service: corrupt job record %s: %w", id, err)
	}
	return &job, nil
}

func (s *DiskStore) Formula(id string) (*cnf.Formula, error) {
	if !validID(id) {
		return nil, ErrUnknownJob
	}
	fin, err := os.Open(filepath.Join(s.dir(id), "formula.cnf"))
	if os.IsNotExist(err) {
		return nil, ErrUnknownJob
	}
	if err != nil {
		return nil, err
	}
	defer fin.Close()
	// The artifact was admitted through the limited parsers (or validated
	// on replication) and written by our own encoder; trusted here.
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		return nil, fmt.Errorf("service: corrupt formula artifact %s: %w", id, err)
	}
	return f, nil
}

func (s *DiskStore) Artifacts(id string) (*cnf.Formula, *proof.Trace, error) {
	f, err := s.Formula(id)
	if err != nil {
		return nil, nil, err
	}
	pin, err := os.Open(filepath.Join(s.dir(id), "proof.trace"))
	if os.IsNotExist(err) {
		return nil, nil, ErrUnknownJob // replica records carry no trace
	}
	if err != nil {
		return nil, nil, err
	}
	defer pin.Close()
	tr, err := proof.Read(pin)
	if err != nil {
		return nil, nil, fmt.Errorf("service: corrupt proof artifact %s: %w", id, err)
	}
	return f, tr, nil
}

func (s *DiskStore) SetResult(id string, jr *JobResult) error {
	if !validID(id) {
		return ErrUnknownJob
	}
	if _, err := os.Stat(filepath.Join(s.dir(id), "job.json")); os.IsNotExist(err) {
		return ErrUnknownJob
	}
	return atomicio.WriteFile(filepath.Join(s.dir(id), "result.json"), func(w io.Writer) error {
		b, err := encodeJSON(jr)
		if err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	})
}

func (s *DiskStore) SetLRAT(id string, lrat []byte) error {
	if !validID(id) {
		return ErrUnknownJob
	}
	if _, err := os.Stat(filepath.Join(s.dir(id), "job.json")); os.IsNotExist(err) {
		return ErrUnknownJob
	}
	return atomicio.WriteFile(filepath.Join(s.dir(id), "proof.lrat"), func(w io.Writer) error {
		_, err := w.Write(lrat)
		return err
	})
}

func (s *DiskStore) LRAT(id string) ([]byte, error) {
	if !validID(id) {
		return nil, ErrUnknownJob
	}
	b, err := os.ReadFile(filepath.Join(s.dir(id), "proof.lrat"))
	if os.IsNotExist(err) {
		if _, jerr := os.Stat(filepath.Join(s.dir(id), "job.json")); os.IsNotExist(jerr) {
			return nil, ErrUnknownJob
		}
		return nil, nil
	}
	return b, err
}

// PutReplica persists a verdict copy: formula + hinted proof + job record
// (Replica set) first, result.json last — the same commit-point discipline
// as Create/SetResult, so a torn replica (crash mid-write) is observable as
// "job.json marked replica, no result.json" and swept at the next open.
func (s *DiskStore) PutReplica(job *Job, f *cnf.Formula, jr *JobResult, lrat []byte) error {
	if !validID(job.ID) {
		return fmt.Errorf("service: invalid job id %q", job.ID)
	}
	if existing, err := s.Job(job.ID); err == nil && !existing.Replica {
		// This node owns the job natively; a replica copy must never
		// clobber the primary record (re-replicating onto an existing
		// replica, by contrast, is an idempotent overwrite).
		return fmt.Errorf("service: job %s exists locally; refusing replica overwrite", job.ID)
	}
	dir := s.dir(job.ID)
	fresh := false
	if _, err := os.Stat(filepath.Join(dir, "job.json")); os.IsNotExist(err) {
		fresh = true
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	commit := func() error {
		err := atomicio.WriteFile(filepath.Join(dir, "formula.cnf"), func(w io.Writer) error {
			return cnf.WriteDimacs(w, f)
		})
		if err != nil {
			return err
		}
		err = atomicio.WriteFile(filepath.Join(dir, "proof.lrat"), func(w io.Writer) error {
			_, err := w.Write(lrat)
			return err
		})
		if err != nil {
			return err
		}
		err = atomicio.WriteFile(filepath.Join(dir, "job.json"), func(w io.Writer) error {
			b, err := encodeJSON(job)
			if err != nil {
				return err
			}
			_, err = w.Write(b)
			return err
		})
		if err != nil {
			return err
		}
		// result.json last: its appearance is what makes the replica exist.
		return atomicio.WriteFile(filepath.Join(dir, "result.json"), func(w io.Writer) error {
			b, err := encodeJSON(jr)
			if err != nil {
				return err
			}
			_, err = w.Write(b)
			return err
		})
	}
	if err := commit(); err != nil {
		if fresh {
			os.RemoveAll(dir)
		}
		return err
	}
	return nil
}

func (s *DiskStore) Result(id string) (*JobResult, error) {
	if !validID(id) {
		return nil, ErrUnknownJob
	}
	b, err := os.ReadFile(filepath.Join(s.dir(id), "result.json"))
	if os.IsNotExist(err) {
		if _, jerr := os.Stat(filepath.Join(s.dir(id), "job.json")); os.IsNotExist(jerr) {
			return nil, ErrUnknownJob
		}
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var jr JobResult
	if err := json.Unmarshal(b, &jr); err != nil {
		return nil, fmt.Errorf("service: corrupt result record %s: %w", id, err)
	}
	return &jr, nil
}

func (s *DiskStore) Incomplete() ([]*Job, error) {
	ents, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return nil, err
	}
	var out []*Job
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir(e.Name()), "result.json")); err == nil {
			continue
		}
		job, err := s.Job(e.Name())
		if err == ErrUnknownJob {
			continue // swept-class debris racing a concurrent admission
		}
		if err != nil {
			return nil, err
		}
		if job.Replica {
			// A replica copy without its result commit is re-replication
			// debris, never runnable work (this shard has no trace for it).
			continue
		}
		out = append(out, job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

func (s *DiskStore) MaxSeq() (uint64, error) {
	ents, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return 0, err
	}
	var max uint64
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		job, err := s.Job(e.Name())
		if err != nil {
			continue
		}
		if job.Seq > max {
			max = job.Seq
		}
	}
	return max, nil
}

func (s *DiskStore) JournalPath(id string) string {
	if !validID(id) {
		return ""
	}
	return filepath.Join(s.dir(id), "ck.dpvj")
}

// Ping writes and removes a probe file, the cheapest end-to-end check that
// the volume behind the store still accepts writes.
func (s *DiskStore) Ping() error {
	p := filepath.Join(s.root, ".probe")
	if err := os.WriteFile(p, []byte("ok\n"), 0o644); err != nil {
		return fmt.Errorf("service: store not writable: %w", err)
	}
	return os.Remove(p)
}
