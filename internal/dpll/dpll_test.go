package dpll

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func bruteSat(f *cnf.Formula) bool {
	n := f.NumVars
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestTrivialCases(t *testing.T) {
	sat := cnf.NewFormula(0).Add(1, 2).Add(-1, 2)
	st, model, _, err := Solve(sat, 0)
	if err != nil || st != Sat {
		t.Fatalf("st=%v err=%v", st, err)
	}
	if !sat.Eval(model) {
		t.Fatal("bogus model")
	}

	unsat := cnf.NewFormula(0).Add(1).Add(-1)
	if st, _, _, _ := Solve(unsat, 0); st != Unsat {
		t.Fatalf("st=%v", st)
	}

	empty := cnf.NewFormula(1)
	empty.AddClause(cnf.Clause{})
	if st, _, _, _ := Solve(empty, 0); st != Unsat {
		t.Fatal("empty clause not refuted")
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sat, unsat := 0, 0
	for round := 0; round < 400; round++ {
		nVars := 3 + rng.Intn(8)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nVars*(2+rng.Intn(4)); i++ {
			k := 1 + rng.Intn(3)
			c := make(cnf.Clause, 0, k)
			for j := 0; j < k; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		want := bruteSat(f)
		st, model, _, err := Solve(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		switch st {
		case Sat:
			if !want {
				t.Fatalf("round %d: DPLL says SAT, brute force disagrees\n%v", round, f)
			}
			if !f.Eval(model) {
				t.Fatalf("round %d: bogus model", round)
			}
			sat++
		case Unsat:
			if want {
				t.Fatalf("round %d: DPLL says UNSAT, brute force disagrees\n%v", round, f)
			}
			unsat++
		default:
			t.Fatalf("round %d: %v without budget", round, st)
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("weak coverage: %d/%d", sat, unsat)
	}
}

func TestAgreesWithCDCL(t *testing.T) {
	for _, inst := range []gen.Instance{gen.PHP(5), gen.XorChain(9), gen.AdderEquiv(6)} {
		st, _, _, err := Solve(inst.F, 0)
		if err != nil {
			t.Fatal(err)
		}
		cst, _, _, _, err := solver.Solve(inst.F, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if (st == Sat) != (cst == solver.Sat) {
			t.Errorf("%s: DPLL %v vs CDCL %v", inst.Name, st, cst)
		}
	}
}

func TestDecisionBudget(t *testing.T) {
	inst := gen.PHP(7)
	st, _, stats, err := Solve(inst.F, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st != Unknown {
		t.Fatalf("st=%v", st)
	}
	if stats.Decisions < 50 {
		t.Errorf("decisions=%d", stats.Decisions)
	}
}

func TestTautologyDropped(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, -1).Add(2)
	st, model, _, err := Solve(f, 0)
	if err != nil || st != Sat || !model[1] {
		t.Fatalf("st=%v model=%v err=%v", st, model, err)
	}
}

// TestCDCLBeatsDPLLOnPHP documents the motivating gap: clause learning
// needs far fewer backtracks than plain DPLL on the pigeonhole formula.
func TestCDCLBeatsDPLLOnPHP(t *testing.T) {
	inst := gen.PHP(6)
	_, _, dstats, err := Solve(inst.F, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, cstats, err := solver.Solve(inst.F, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dstats.Backtracks <= cstats.Conflicts {
		t.Logf("note: DPLL backtracks %d <= CDCL conflicts %d (unusual but possible)",
			dstats.Backtracks, cstats.Conflicts)
	}
}
