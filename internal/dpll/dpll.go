// Package dpll implements the classic Davis–Putnam–Logemann–Loveland
// procedure: unit propagation, chronological backtracking, a static
// Jeroslow–Wang branching order, and no clause learning. It is the
// pre-CDCL baseline the paper's solvers superseded, kept here for two
// reasons: as yet another independent satisfiability oracle for tests, and
// to make the motivating point measurable — a DPLL run leaves no conflict
// clauses behind, so there is nothing a conflict-clause proof could be
// built from, while CDCL gets the proof "for free".
package dpll

import (
	"math"
	"sort"

	"repro/internal/cnf"
)

// Status is the outcome of Solve.
type Status int

const (
	// Unknown means the node budget was exhausted.
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means the search space was exhausted.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SATISFIABLE"
	case Unsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

// Stats counts search effort.
type Stats struct {
	Decisions    int64
	Propagations int64
	Backtracks   int64
}

type dpll struct {
	nVars   int
	clauses []cnf.Clause
	watches [][]int // literal -> clause indices watching it
	assigns []int8
	trail   []cnf.Lit
	lims    []int
	flipped []bool // per decision level: second branch already taken
	qhead   int
	order   []cnf.Var
	stats   Stats
}

// Solve runs DPLL on f with a decision budget (0 = unlimited).
func Solve(f *cnf.Formula, maxDecisions int64) (Status, []bool, Stats, error) {
	d := &dpll{nVars: f.NumVars}
	d.assigns = make([]int8, f.NumVars)
	d.watches = make([][]int, 2*f.NumVars)

	// Load clauses; tautologies are dropped; units queued.
	var units []cnf.Lit
	for _, raw := range f.Clauses {
		c, taut := raw.Normalize()
		if taut {
			continue
		}
		switch len(c) {
		case 0:
			return Unsat, nil, d.stats, nil
		case 1:
			units = append(units, c[0])
		default:
			idx := len(d.clauses)
			d.clauses = append(d.clauses, c)
			d.watches[c[0]] = append(d.watches[c[0]], idx)
			d.watches[c[1]] = append(d.watches[c[1]], idx)
		}
	}

	d.order = jeroslowWang(f)

	for _, u := range units {
		if !d.enqueue(u) {
			return Unsat, nil, d.stats, nil
		}
	}

	for {
		if d.propagate() {
			// Conflict: chronological backtracking.
			d.stats.Backtracks++
			level := len(d.lims)
			for level > 0 && d.flipped[level-1] {
				level--
			}
			if level == 0 {
				return Unsat, nil, d.stats, nil
			}
			// Flip the decision of `level`.
			dec := d.trail[d.lims[level-1]]
			d.cancelTo(level - 1)
			d.lims = append(d.lims, len(d.trail))
			d.flipped = d.flipped[:level-1]
			d.flipped = append(d.flipped, true)
			d.enqueue(dec.Neg())
			continue
		}
		v := d.pick()
		if v == cnf.VarUndef {
			model := make([]bool, d.nVars)
			for i := range model {
				model[i] = d.assigns[i] == 1
			}
			return Sat, model, d.stats, nil
		}
		if maxDecisions > 0 && d.stats.Decisions >= maxDecisions {
			return Unknown, nil, d.stats, nil
		}
		d.stats.Decisions++
		d.lims = append(d.lims, len(d.trail))
		d.flipped = append(d.flipped, false)
		d.enqueue(cnf.NegLit(v)) // branch negative first, like early solvers
	}
}

func (d *dpll) value(l cnf.Lit) int8 {
	v := d.assigns[l.Var()]
	if l.IsNeg() {
		return -v
	}
	return v
}

func (d *dpll) enqueue(l cnf.Lit) bool {
	switch d.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	if l.IsNeg() {
		d.assigns[l.Var()] = -1
	} else {
		d.assigns[l.Var()] = 1
	}
	d.trail = append(d.trail, l)
	return true
}

func (d *dpll) cancelTo(level int) {
	bound := d.lims[level]
	for i := len(d.trail) - 1; i >= bound; i-- {
		d.assigns[d.trail[i].Var()] = 0
	}
	d.trail = d.trail[:bound]
	d.lims = d.lims[:level]
	d.qhead = bound
}

// propagate returns true on conflict.
func (d *dpll) propagate() bool {
	for d.qhead < len(d.trail) {
		p := d.trail[d.qhead]
		d.qhead++
		falseLit := p.Neg()
		ws := d.watches[falseLit]
		out := ws[:0]
		for i := 0; i < len(ws); i++ {
			idx := ws[i]
			c := d.clauses[idx]
			if c[0] == falseLit {
				c[0], c[1] = c[1], c[0]
			}
			if d.value(c[0]) == 1 {
				out = append(out, idx)
				continue
			}
			found := false
			for k := 2; k < len(c); k++ {
				if d.value(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					d.watches[c[1]] = append(d.watches[c[1]], idx)
					found = true
					break
				}
			}
			if found {
				continue
			}
			out = append(out, idx)
			if !d.enqueue(c[0]) {
				out = append(out, ws[i+1:]...)
				d.watches[falseLit] = out
				return true
			}
			d.stats.Propagations++
		}
		d.watches[falseLit] = out
	}
	return false
}

func (d *dpll) pick() cnf.Var {
	for _, v := range d.order {
		if d.assigns[v] == 0 {
			return v
		}
	}
	return cnf.VarUndef
}

// jeroslowWang orders variables by the classic static weight
// J(v) = Σ over clauses containing v of 2^-|c|.
func jeroslowWang(f *cnf.Formula) []cnf.Var {
	weight := make([]float64, f.NumVars)
	for _, c := range f.Clauses {
		w := math.Pow(2, -float64(len(c)))
		for _, l := range c {
			weight[l.Var()] += w
		}
	}
	order := make([]cnf.Var, f.NumVars)
	for i := range order {
		order[i] = cnf.Var(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return weight[order[a]] > weight[order[b]]
	})
	return order
}
