package resolution

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/solver"
)

func cl(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

// handProof builds the classic 4-clause refutation:
//
//	(1 2) (1 -2) (-1 3) (-1 -3)
//	chain [(1 2),(1 -2)] -> (1)
//	chain [(-1 3),(-1 -3)] -> (-1)
//	chain [(1),(-1)] -> ()
func handProof() *Proof {
	return &Proof{
		Sources: []cnf.Clause{cl(1, 2), cl(1, -2), cl(-1, 3), cl(-1, -3)},
		Chains:  [][]int{{0, 1}, {2, 3}, {4, 5}},
	}
}

func TestVerifyHandProof(t *testing.T) {
	p := handProof()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.InternalNodes() != 3 {
		t.Errorf("InternalNodes = %d, want 3", p.InternalNodes())
	}
	if p.TotalNodes() != 7 {
		t.Errorf("TotalNodes = %d, want 7", p.TotalNodes())
	}
}

func TestVerifyWithExpected(t *testing.T) {
	p := handProof()
	p.Expected = []cnf.Clause{cl(1), cl(-1), {}}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	p.Expected[0] = cl(2)
	if err := p.Verify(); err == nil {
		t.Error("wrong expected clause accepted")
	}
}

func TestVerifyRejectsNoClash(t *testing.T) {
	p := &Proof{
		Sources: []cnf.Clause{cl(1, 2), cl(1, 3)},
		Chains:  [][]int{{0, 1}},
	}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "clash") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifyRejectsDoubleClash(t *testing.T) {
	p := &Proof{
		Sources: []cnf.Clause{cl(1, 2), cl(-1, -2)},
		Chains:  [][]int{{0, 1}},
	}
	if err := p.Verify(); err == nil {
		t.Error("double clash accepted")
	}
}

func TestVerifyRejectsNonEmptySink(t *testing.T) {
	p := &Proof{
		Sources: []cnf.Clause{cl(1, 2), cl(-1, 3)},
		Chains:  [][]int{{0, 1}},
	}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "sink") {
		t.Errorf("err = %v", err)
	}
}

func TestVerifyRejectsForwardReference(t *testing.T) {
	p := handProof()
	p.Chains[0] = []int{0, 6} // references a node derived later
	if err := p.Verify(); err == nil {
		t.Error("forward reference accepted")
	}
}

func TestVerifyRejectsEmptyChain(t *testing.T) {
	p := handProof()
	p.Chains[0] = nil
	if err := p.Verify(); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestCopyChainForEmptySource(t *testing.T) {
	p := &Proof{
		Sources: []cnf.Clause{{}},
		Chains:  [][]int{{0}},
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.InternalNodes() != 0 {
		t.Errorf("InternalNodes = %d", p.InternalNodes())
	}
}

func TestDerivedClause(t *testing.T) {
	p := handProof()
	got, err := p.DerivedClause(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameLits(cl(1)) {
		t.Errorf("DerivedClause(0) = %v, want (1)", got)
	}
	empty, err := p.DerivedClause(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("DerivedClause(2) = %v, want empty", empty)
	}
}

// php builds the pigeonhole formula (duplicated from the solver tests to
// keep packages independent).
func php(n int) *cnf.Formula {
	f := cnf.NewFormula((n + 1) * n)
	v := func(p, h int) cnf.Var { return cnf.Var(p*n + h) }
	for p := 0; p <= n; p++ {
		c := make(cnf.Clause, 0, n)
		for h := 0; h < n; h++ {
			c = append(c, cnf.PosLit(v(p, h)))
		}
		f.AddClause(c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(cnf.Clause{cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h))})
			}
		}
	}
	return f
}

// TestSolverChainsFormValidResolutionProof is the keystone integration test:
// the solver's recorded chains, expanded, must be an exact resolution-graph
// proof deriving precisely the clauses of the conflict-clause trace.
func TestSolverChainsFormValidResolutionProof(t *testing.T) {
	for _, scheme := range []solver.LearnScheme{solver.Learn1UIP, solver.LearnDecision, solver.LearnHybrid} {
		for n := 2; n <= 4; n++ {
			f := php(n)
			s, err := solver.NewFromFormula(f, solver.Options{Learn: scheme, RecordChains: true})
			if err != nil {
				t.Fatal(err)
			}
			if st := s.Run(); st != solver.Unsat {
				t.Fatalf("php(%d): status %v", n, st)
			}
			rp, err := FromSolverRun(f, s.Trace(), s.Chains())
			if err != nil {
				t.Fatal(err)
			}
			if err := rp.Verify(); err != nil {
				t.Fatalf("php(%d) scheme %v: %v", n, scheme, err)
			}
			// Internal node count must match the trace's resolution count
			// plus the final pair resolution.
			want := s.Trace().TotalResolutions() + 1
			if got := rp.InternalNodes(); got != want {
				t.Errorf("php(%d) scheme %v: InternalNodes = %d, want %d", n, scheme, got, want)
			}
		}
	}
}

func TestSolverChainsOnRandomUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for round := 0; round < 200 && checked < 40; round++ {
		nVars := 4 + rng.Intn(6)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nVars*5; i++ {
			c := make(cnf.Clause, 0, 3)
			for j := 0; j < 3; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c)
		}
		s, err := solver.NewFromFormula(f, solver.Options{RecordChains: true})
		if err != nil {
			t.Fatal(err)
		}
		if s.Run() != solver.Unsat {
			continue
		}
		checked++
		rp, err := FromSolverRun(f, s.Trace(), s.Chains())
		if err != nil {
			t.Fatal(err)
		}
		if err := rp.Verify(); err != nil {
			t.Fatalf("round %d: %v\nformula:\n%v", round, err, f)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d UNSAT instances checked", checked)
	}
}

func TestFromSolverRunRequiresChains(t *testing.T) {
	f := php(2)
	s, _ := solver.NewFromFormula(f, solver.Options{})
	s.Run()
	if _, err := FromSolverRun(f, s.Trace(), s.Chains()); err == nil {
		t.Error("missing chains accepted")
	}
}

func TestFromSolverRunEmptyClauseInput(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.Clause{})
	s, _ := solver.NewFromFormula(f, solver.Options{RecordChains: true})
	if s.Run() != solver.Unsat {
		t.Fatal("not unsat")
	}
	rp, err := FromSolverRun(f, s.Trace(), s.Chains())
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Verify(); err != nil {
		t.Fatal(err)
	}
	_ = proof.TermEmptyClause
}
