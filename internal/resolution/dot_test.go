package resolution

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	p := handProof()
	g, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, p.Sources); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph resolution {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Errorf("not a DOT document:\n%s", out)
	}
	// 4 sources + 3 internal nodes, all reachable.
	for _, want := range []string{"n0 [shape=box", "n3 [shape=box", "n6 [", "n4 -> n6", "n5 -> n6"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "fillcolor=lightgrey") {
		t.Error("sink not highlighted")
	}
}

func TestWriteDOTWithoutSources(t *testing.T) {
	p := handProof()
	g, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"S0\"") {
		t.Error("fallback source labels missing")
	}
}
