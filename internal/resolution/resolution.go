// Package resolution implements resolution-graph proofs of unsatisfiability
// — the baseline proof format the paper compares conflict-clause proofs
// against (§5, Tables 2 and 3).
//
// A resolution-graph proof is a DAG whose sources are clauses of the input
// formula and whose internal nodes are resolvents of two parents; the proof
// is correct when every resolution clashes on exactly one variable, no
// resolvent is tautologous, and a sink node carries the empty clause.
//
// Following [12]'s observation that conflict-clause-recording solvers admit
// a compact representation, derived clauses are stored as *chains*: clause
// k is the left-to-right sequential resolvent of a list of antecedent IDs
// (a trivial-resolution chain), which is exactly what CDCL conflict analysis
// produces. A chain of n antecedents contributes n-1 internal graph nodes.
// Verify expands every chain, so checking remains a per-resolution check on
// the explicit graph.
package resolution

import (
	"fmt"

	"repro/internal/cnf"
	"repro/internal/proof"
)

// Proof is a resolution-graph proof in chain form. Node IDs: 0..len(Sources)-1
// are the source clauses; len(Sources)+k is the clause derived by Chains[k].
type Proof struct {
	// Sources are the input formula's clauses, in input order (IDs match
	// clause indices, so solver chains plug in directly).
	Sources []cnf.Clause
	// Chains derive one clause each; every entry is a node ID smaller than
	// the clause being derived (the graph is topologically ordered). A
	// one-element chain is a copy node (used when the input already
	// contains the empty clause).
	Chains [][]int
	// Expected, when non-nil, gives the clause each chain is supposed to
	// derive (as recorded in the conflict-clause trace); Verify checks the
	// resolvent matches. len(Expected) == len(Chains).
	Expected []cnf.Clause
}

// FromSolverRun assembles a resolution-graph proof from a solver run on f
// that produced the given trace with recorded chains (Options.RecordChains).
// The final step resolving the final conflicting pair into the empty clause
// is appended automatically.
func FromSolverRun(f *cnf.Formula, tr *proof.Trace, chains [][]int) (*Proof, error) {
	if len(chains) != tr.Len() {
		return nil, fmt.Errorf("resolution: %d chains for %d trace clauses (was RecordChains set?)",
			len(chains), tr.Len())
	}
	p := &Proof{
		Sources:  f.Clauses,
		Chains:   make([][]int, 0, len(chains)+1),
		Expected: make([]cnf.Clause, 0, len(chains)+1),
	}
	p.Chains = append(p.Chains, chains...)
	p.Expected = append(p.Expected, tr.Clauses...)

	switch tr.Terminates() {
	case proof.TermFinalPair:
		n := len(f.Clauses) + tr.Len()
		p.Chains = append(p.Chains, []int{n - 2, n - 1})
		p.Expected = append(p.Expected, cnf.Clause{})
	case proof.TermEmptyClause:
		// The last chain already derives the empty clause.
	default:
		return nil, fmt.Errorf("resolution: trace does not terminate")
	}
	return p, nil
}

// NumSources returns the number of source nodes.
func (p *Proof) NumSources() int { return len(p.Sources) }

// NumDerived returns the number of derived clauses (chains).
func (p *Proof) NumDerived() int { return len(p.Chains) }

// InternalNodes returns the number of internal nodes of the expanded
// resolution graph: one per resolution step, i.e. len(chain)-1 per chain.
// This is the quantity the paper's Table 2 reports (in thousands).
func (p *Proof) InternalNodes() int64 {
	var n int64
	for _, ch := range p.Chains {
		if len(ch) > 1 {
			n += int64(len(ch) - 1)
		}
	}
	return n
}

// TotalNodes returns sources + internal nodes.
func (p *Proof) TotalNodes() int64 {
	return int64(len(p.Sources)) + p.InternalNodes()
}

// Verify checks the proof: every chain must be a valid trivial-resolution
// derivation (unique clash variable at each step, no tautologous
// resolvent), every referenced ID must precede the derived clause, the
// derived clause must match Expected when present, and the final derived
// clause must be empty.
func (p *Proof) Verify() error {
	if len(p.Chains) == 0 {
		return fmt.Errorf("resolution: no derived clauses")
	}
	if p.Expected != nil && len(p.Expected) != len(p.Chains) {
		return fmt.Errorf("resolution: %d expected clauses for %d chains",
			len(p.Expected), len(p.Chains))
	}
	nodes := make([]cnf.Clause, len(p.Sources), len(p.Sources)+len(p.Chains))
	for i, c := range p.Sources {
		norm, _ := c.Normalize()
		nodes[i] = norm
	}
	for k, ch := range p.Chains {
		self := len(p.Sources) + k
		if len(ch) == 0 {
			return fmt.Errorf("resolution: chain %d is empty", k)
		}
		for _, id := range ch {
			if id < 0 || id >= self {
				return fmt.Errorf("resolution: chain %d references node %d (not before %d)", k, id, self)
			}
		}
		cur := nodes[ch[0]]
		for i := 1; i < len(ch); i++ {
			next := nodes[ch[i]]
			v, ok := cnf.ClashVar(cur, next)
			if !ok {
				return fmt.Errorf("resolution: chain %d step %d: clauses %v and %v have no unique clash variable",
					k, i, cur, next)
			}
			res, taut, ok := cur.Resolve(next, v)
			if !ok {
				return fmt.Errorf("resolution: chain %d step %d: cannot resolve on %v", k, i, v)
			}
			if taut {
				return fmt.Errorf("resolution: chain %d step %d: tautologous resolvent %v", k, i, res)
			}
			cur = res
		}
		if p.Expected != nil {
			want, _ := p.Expected[k].Normalize()
			if !cur.SameLits(want) {
				return fmt.Errorf("resolution: chain %d derives %v, trace recorded %v", k, cur, want)
			}
		}
		nodes = append(nodes, cur)
	}
	if last := nodes[len(nodes)-1]; len(last) != 0 {
		return fmt.Errorf("resolution: sink clause is %v, not empty", last)
	}
	return nil
}

// DerivedClause expands chain k and returns the clause it derives; mainly
// for tests and diagnostics. It assumes the proof verifies.
func (p *Proof) DerivedClause(k int) (cnf.Clause, error) {
	nodes := make([]cnf.Clause, len(p.Sources))
	for i, c := range p.Sources {
		norm, _ := c.Normalize()
		nodes[i] = norm
	}
	for j := 0; j <= k; j++ {
		ch := p.Chains[j]
		cur := nodes[ch[0]]
		for i := 1; i < len(ch); i++ {
			v, ok := cnf.ClashVar(cur, nodes[ch[i]])
			if !ok {
				return nil, fmt.Errorf("resolution: chain %d step %d: no clash", j, i)
			}
			res, _, ok := cur.Resolve(nodes[ch[i]], v)
			if !ok {
				return nil, fmt.Errorf("resolution: chain %d step %d: bad pivot", j, i)
			}
			cur = res
		}
		nodes = append(nodes, cur)
	}
	return nodes[len(nodes)-1], nil
}
