package resolution

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/solver"
)

func TestExpandHandProof(t *testing.T) {
	p := handProof()
	g, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInternal() != 3 {
		t.Errorf("internal nodes = %d, want 3", g.NumInternal())
	}
	if g.Sink != 4+2 {
		t.Errorf("sink = %d", g.Sink)
	}
	stats := g.Reachable()
	if stats.InternalNodes != 3 || stats.SourcesTouched != 4 {
		t.Errorf("reach = %+v", stats)
	}
	if stats.Depth != 2 {
		t.Errorf("depth = %d, want 2", stats.Depth)
	}
}

func TestExpandRejectsBadProof(t *testing.T) {
	p := &Proof{
		Sources: []cnf.Clause{cl(1, 2), cl(1, 3)},
		Chains:  [][]int{{0, 1}},
	}
	if _, err := p.Expand(); err == nil {
		t.Error("no-clash proof expanded")
	}
	p2 := handProof()
	p2.Chains = p2.Chains[:2] // sink clause (1) is not empty
	if _, err := p2.Expand(); err == nil {
		t.Error("non-empty sink accepted")
	}
}

func TestExpandCopyChain(t *testing.T) {
	p := &Proof{
		Sources: []cnf.Clause{{}},
		Chains:  [][]int{{0}},
	}
	g, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumInternal() != 0 || g.Sink != 0 {
		t.Errorf("graph = %+v", g)
	}
	stats := g.Reachable()
	if stats.SourcesTouched != 1 || stats.Depth != 0 {
		t.Errorf("reach = %+v", stats)
	}
}

// TestReachableSourcesFormCore: the sources reachable from the empty-clause
// sink are an unsatisfiable core of the input (an independent
// cross-validation of the two core notions in the repository).
func TestReachableSourcesFormCore(t *testing.T) {
	inst := php(4)
	s, err := solver.NewFromFormula(inst, solver.Options{RecordChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Run() != solver.Unsat {
		t.Fatal("not unsat")
	}
	rp, err := FromSolverRun(inst, s.Trace(), s.Chains())
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Verify(); err != nil {
		t.Fatal(err)
	}
	g, err := rp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	stats := g.Reachable()
	if stats.SourcesTouched == 0 || stats.SourcesTouched > inst.NumClauses() {
		t.Fatalf("reach = %+v", stats)
	}
	coreF := inst.Restrict(stats.SourceIDs)
	st, _, _, _, err := solver.Solve(coreF, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.Unsat {
		t.Fatalf("resolution-reachable sources are not a core: %v", st)
	}
	// Trimmed graph never exceeds the full graph.
	if int64(stats.InternalNodes) > rp.InternalNodes() {
		t.Errorf("trimmed %d > full %d", stats.InternalNodes, rp.InternalNodes())
	}
	if stats.Depth <= 0 {
		t.Errorf("depth = %d", stats.Depth)
	}
}

func TestExpandMatchesInternalNodesCount(t *testing.T) {
	inst := php(3)
	s, err := solver.NewFromFormula(inst, solver.Options{RecordChains: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Run() != solver.Unsat {
		t.Fatal("not unsat")
	}
	rp, err := FromSolverRun(inst, s.Trace(), s.Chains())
	if err != nil {
		t.Fatal(err)
	}
	g, err := rp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if int64(g.NumInternal()) != rp.InternalNodes() {
		t.Errorf("expanded %d nodes, counted %d", g.NumInternal(), rp.InternalNodes())
	}
}
