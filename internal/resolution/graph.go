package resolution

import (
	"fmt"

	"repro/internal/cnf"
)

// Graph is the explicit node-level resolution DAG expanded from a chain
// Proof — the representation whose size the paper argues can be
// prohibitive. Node IDs: 0..NumSources-1 are the sources; internal node i
// (a single binary resolution) has ID NumSources+i.
type Graph struct {
	NumSources int
	Nodes      []GraphNode
	// Sink is the node deriving the empty clause.
	Sink int
}

// GraphNode is one binary resolution. LeftPos records which parent carries
// the positive pivot literal (needed by symmetric interpolation systems).
type GraphNode struct {
	Left, Right int
	Pivot       cnf.Var
	LeftPos     bool
}

// Expand performs every chain resolution and materializes the binary DAG.
// It fails wherever Verify would (missing clash, tautology), so a verified
// proof always expands.
func (p *Proof) Expand() (*Graph, error) {
	g := &Graph{NumSources: len(p.Sources)}
	clauses := make([]cnf.Clause, len(p.Sources), len(p.Sources)+len(p.Chains))
	for i, c := range p.Sources {
		norm, _ := c.Normalize()
		clauses[i] = norm
	}
	// nodeOf maps a proof clause ID (source or chain result) to its graph
	// node ID. Sources map to themselves; chain results map to the last
	// internal node of the chain (or, for copy chains, to the copied node).
	nodeOf := make([]int, len(p.Sources), len(p.Sources)+len(p.Chains))
	for i := range p.Sources {
		nodeOf[i] = i
	}
	for k, ch := range p.Chains {
		if len(ch) == 0 {
			return nil, fmt.Errorf("resolution: chain %d is empty", k)
		}
		self := len(p.Sources) + k
		for _, id := range ch {
			if id < 0 || id >= self {
				return nil, fmt.Errorf("resolution: chain %d references node %d", k, id)
			}
		}
		cur := clauses[ch[0]]
		curNode := nodeOf[ch[0]]
		for i := 1; i < len(ch); i++ {
			next := clauses[ch[i]]
			v, ok := cnf.ClashVar(cur, next)
			if !ok {
				return nil, fmt.Errorf("resolution: chain %d step %d: no unique clash", k, i)
			}
			res, taut, ok := cur.Resolve(next, v)
			if !ok || taut {
				return nil, fmt.Errorf("resolution: chain %d step %d: bad resolvent", k, i)
			}
			g.Nodes = append(g.Nodes, GraphNode{
				Left:    curNode,
				Right:   nodeOf[ch[i]],
				Pivot:   v,
				LeftPos: cur.Has(cnf.PosLit(v)),
			})
			curNode = g.NumSources + len(g.Nodes) - 1
			cur = res
		}
		clauses = append(clauses, cur)
		nodeOf = append(nodeOf, curNode)
	}
	if len(clauses) == len(p.Sources) {
		return nil, fmt.Errorf("resolution: no derived clauses")
	}
	if last := clauses[len(clauses)-1]; len(last) != 0 {
		return nil, fmt.Errorf("resolution: sink clause %v is not empty", last)
	}
	g.Sink = nodeOf[len(nodeOf)-1]
	return g, nil
}

// NumInternal returns the number of internal (resolution) nodes.
func (g *Graph) NumInternal() int { return len(g.Nodes) }

// ReachStats summarizes the part of the graph reachable from the sink —
// i.e. the resolution proof after discarding steps that never feed the
// empty clause (the resolution-graph analogue of proof trimming).
type ReachStats struct {
	InternalNodes  int
	SourcesTouched int
	SourceIDs      []int // the touched sources: an unsatisfiable core of the input
	Depth          int   // longest source-to-sink path length (in resolutions)
}

// Reachable computes the trimmed-graph statistics from the sink.
func (g *Graph) Reachable() ReachStats {
	seenSrc := make([]bool, g.NumSources)
	seenInt := make([]bool, len(g.Nodes))
	depth := make([]int, g.NumSources+len(g.Nodes))

	var stats ReachStats
	// DFS with explicit post-order for depth computation; the DAG is
	// topologically ordered (children have smaller IDs), so a reverse
	// top-down pass also works: process reachable nodes in descending ID
	// order.
	reach := make([]bool, g.NumSources+len(g.Nodes))
	reach[g.Sink] = true
	for id := g.Sink; id >= 0; id-- {
		if !reach[id] {
			continue
		}
		if id < g.NumSources {
			if !seenSrc[id] {
				seenSrc[id] = true
				stats.SourcesTouched++
				stats.SourceIDs = append(stats.SourceIDs, id)
			}
			continue
		}
		n := g.Nodes[id-g.NumSources]
		if !seenInt[id-g.NumSources] {
			seenInt[id-g.NumSources] = true
			stats.InternalNodes++
		}
		reach[n.Left] = true
		reach[n.Right] = true
	}
	// Depth: process in ascending ID order; depth of a source is 0, of an
	// internal node 1 + max(children).
	for id := 0; id <= g.Sink; id++ {
		if id < g.NumSources || !reach[id] {
			continue
		}
		n := g.Nodes[id-g.NumSources]
		d := depth[n.Left]
		if depth[n.Right] > d {
			d = depth[n.Right]
		}
		depth[id] = d + 1
	}
	stats.Depth = depth[g.Sink]
	// SourceIDs were collected in descending order; reverse for stability.
	for i, j := 0, len(stats.SourceIDs)-1; i < j; i, j = i+1, j-1 {
		stats.SourceIDs[i], stats.SourceIDs[j] = stats.SourceIDs[j], stats.SourceIDs[i]
	}
	return stats
}
