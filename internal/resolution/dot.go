package resolution

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// WriteDOT renders the expanded resolution graph in Graphviz DOT format —
// useful for inspecting small proofs (the paper's Figure-less tables make
// more sense once you have stared at one of these). Sources are boxes
// labeled with their clause, internal nodes are ellipses labeled with the
// pivot variable, and the sink is highlighted. Only nodes reachable from
// the sink are emitted; full graphs of real proofs are far too large to
// draw.
func (g *Graph) WriteDOT(w io.Writer, sources []cnf.Clause) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph resolution {")
	fmt.Fprintln(bw, "  rankdir=BT;")

	reach := make([]bool, g.NumSources+len(g.Nodes))
	reach[g.Sink] = true
	for id := g.Sink; id >= 0; id-- {
		if !reach[id] || id < g.NumSources {
			continue
		}
		n := g.Nodes[id-g.NumSources]
		reach[n.Left] = true
		reach[n.Right] = true
	}

	for id := 0; id <= g.Sink; id++ {
		if !reach[id] {
			continue
		}
		if id < g.NumSources {
			label := fmt.Sprintf("S%d", id)
			if sources != nil && id < len(sources) {
				label = fmt.Sprintf("S%d: %v", id, sources[id])
			}
			fmt.Fprintf(bw, "  n%d [shape=box,label=%q];\n", id, label)
			continue
		}
		n := g.Nodes[id-g.NumSources]
		attrs := fmt.Sprintf("label=\"⋈ %s\"", n.Pivot)
		if id == g.Sink {
			attrs += ",style=filled,fillcolor=lightgrey,peripheries=2"
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", id, attrs)
		fmt.Fprintf(bw, "  n%d -> n%d;\n", n.Left, id)
		fmt.Fprintf(bw, "  n%d -> n%d;\n", n.Right, id)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
