// Package exitcode defines the outcome-class contract shared by the cmd/
// binaries and the dpvd service (whose job statuses map onto these codes
// via internal/service), so scripts and CI harnesses can tell outcome
// classes apart without parsing output. The SAT-competition codes (10/20)
// keep their conventional meaning; everything else is disjoint from them.
package exitcode

import (
	"errors"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/proof"
)

const (
	// OK: the tool did what was asked (for checkers: proof verified).
	OK = 0
	// Usage: bad flags or arguments.
	Usage = 1
	// VerifyFailed: input was well-formed but the proof was rejected.
	VerifyFailed = 2
	// BadInput: a formula or proof file was missing, unreadable, malformed,
	// or beyond the parser's resource limits.
	BadInput = 3
	// Timeout: a -timeout deadline expired before a verdict.
	Timeout = 4
	// Budget: a resource budget (e.g. -max-props) was exhausted.
	Budget = 5
	// Internal: a defect in the tool itself — a recovered worker panic, a
	// failed output write, an invariant violation.
	Internal = 6
	// Sat / Unsat: the conventional SAT-competition solver results.
	Sat   = 10
	Unsat = 20
	// Interrupted: stopped by SIGINT; 128+SIGINT per shell convention.
	Interrupted = 130
)

// FromVerifyError maps the typed errors of core.Verify/VerifyParallelOpts
// onto exit codes. A nil error maps to OK.
func FromVerifyError(err error) int {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, core.ErrDeadline):
		return Timeout
	case errors.Is(err, core.ErrCancelled):
		return Interrupted
	case errors.Is(err, core.ErrBudget):
		return Budget
	case errors.Is(err, core.ErrBadTrace):
		return BadInput
	default:
		return Internal
	}
}

// IsBadInput reports whether err is a parse-layer rejection (malformed
// input or a parser limit), as opposed to an IO or internal failure.
func IsBadInput(err error) bool {
	return errors.Is(err, cnf.ErrMalformed) || errors.Is(err, cnf.ErrLimit) ||
		errors.Is(err, proof.ErrMalformed) || errors.Is(err, proof.ErrLimit)
}
