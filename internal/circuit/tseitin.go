package circuit

import "repro/internal/cnf"

// ToCNF performs the Tseitin transformation: node i becomes CNF variable i,
// every gate contributes its defining clauses, the constant node is pinned
// false, and each signal in asserts is constrained true by a unit clause.
// The returned formula is equisatisfiable with "all asserted signals are 1".
func (c *Circuit) ToCNF(asserts ...Signal) *cnf.Formula {
	f := cnf.NewFormula(len(c.gates))
	lit := func(s Signal) cnf.Lit { return cnf.NewLit(cnf.Var(s.node()), s.inverted()) }

	// Pin the constant node to 0.
	f.AddClause(cnf.Clause{cnf.NegLit(0)})

	for id, g := range c.gates {
		y := cnf.PosLit(cnf.Var(id))
		ny := y.Neg()
		switch g.Op {
		case OpConst, OpInput:
			// no defining clauses
		case OpAnd:
			a, b := lit(g.In[0]), lit(g.In[1])
			f.AddClause(cnf.Clause{ny, a})
			f.AddClause(cnf.Clause{ny, b})
			f.AddClause(cnf.Clause{y, a.Neg(), b.Neg()})
		case OpOr:
			a, b := lit(g.In[0]), lit(g.In[1])
			f.AddClause(cnf.Clause{y, a.Neg()})
			f.AddClause(cnf.Clause{y, b.Neg()})
			f.AddClause(cnf.Clause{ny, a, b})
		case OpXor:
			a, b := lit(g.In[0]), lit(g.In[1])
			f.AddClause(cnf.Clause{ny, a, b})
			f.AddClause(cnf.Clause{ny, a.Neg(), b.Neg()})
			f.AddClause(cnf.Clause{y, a, b.Neg()})
			f.AddClause(cnf.Clause{y, a.Neg(), b})
		case OpMux:
			s, a, b := lit(g.In[0]), lit(g.In[1]), lit(g.In[2])
			f.AddClause(cnf.Clause{ny, s.Neg(), a})
			f.AddClause(cnf.Clause{y, s.Neg(), a.Neg()})
			f.AddClause(cnf.Clause{ny, s, b})
			f.AddClause(cnf.Clause{y, s, b.Neg()})
			// Redundant but propagation-strengthening clauses:
			f.AddClause(cnf.Clause{ny, a, b})
			f.AddClause(cnf.Clause{y, a.Neg(), b.Neg()})
		}
	}
	for _, s := range asserts {
		f.AddClause(cnf.Clause{lit(s)})
	}
	return f
}

// TseitinClauses returns the number of clauses ToCNF emits for gates with
// node ID < watermark, including the constant-pin clause. Interpolation
// over unrolled circuits uses this to split the flat Tseitin clause list
// into the A-side (gates below a frame watermark) and the B-side, relying
// on ToCNF's emission order following gate IDs.
func (c *Circuit) TseitinClauses(watermark int) int {
	n := 1 // the constant pin
	if watermark > len(c.gates) {
		watermark = len(c.gates)
	}
	for id := 0; id < watermark; id++ {
		switch c.gates[id].Op {
		case OpAnd, OpOr:
			n += 3
		case OpXor:
			n += 4
		case OpMux:
			n += 6
		}
	}
	return n
}

// LitOf exposes the CNF literal corresponding to a signal under ToCNF's
// node-to-variable mapping (useful for adding extra constraints or reading
// models back).
func LitOf(s Signal) cnf.Lit { return cnf.NewLit(cnf.Var(s.node()), s.inverted()) }

// InputVars returns the CNF variables of the primary inputs, in input order.
func (c *Circuit) InputVars() []cnf.Var {
	vs := make([]cnf.Var, len(c.inputs))
	for i, id := range c.inputs {
		vs[i] = cnf.Var(id)
	}
	return vs
}
