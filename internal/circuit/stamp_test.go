package circuit

import (
	"math/rand"
	"testing"
)

// TestCopyIntoPreservesFunction stamps a random circuit twice into a fresh
// destination with swapped input wiring and checks the copies compute what
// the source computes.
func TestCopyIntoPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for round := 0; round < 50; round++ {
		src := New()
		nIn := 2 + rng.Intn(4)
		pool := make([]Signal, 0, 32)
		for i := 0; i < nIn; i++ {
			pool = append(pool, src.Input())
		}
		for g := 0; g < 5+rng.Intn(15); g++ {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			if rng.Intn(2) == 0 {
				a = a.Not()
			}
			var s Signal
			switch rng.Intn(4) {
			case 0:
				s = src.And(a, b)
			case 1:
				s = src.Or(a, b)
			case 2:
				s = src.Xor(a, b)
			default:
				s = src.Mux(pool[rng.Intn(len(pool))], a, b)
			}
			pool = append(pool, s)
		}
		out := pool[len(pool)-1]

		dst := New()
		dstIns := make([]Signal, nIn)
		for i := range dstIns {
			dstIns[i] = dst.Input()
		}
		tr1, err := src.CopyInto(dst, dstIns)
		if err != nil {
			t.Fatal(err)
		}
		// Second stamp with inverted wiring.
		inverted := make([]Signal, nIn)
		for i := range inverted {
			inverted[i] = dstIns[i].Not()
		}
		tr2, err := src.CopyInto(dst, inverted)
		if err != nil {
			t.Fatal(err)
		}

		for mask := 0; mask < 1<<nIn; mask++ {
			inputs := make([]bool, nIn)
			flipped := make([]bool, nIn)
			for i := range inputs {
				inputs[i] = mask&(1<<i) != 0
				flipped[i] = !inputs[i]
			}
			srcVals, err := src.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			dstVals, err := dst.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if ValueOf(srcVals, out) != ValueOf(dstVals, tr1(out)) {
				t.Fatalf("round %d: stamped copy differs on %v", round, inputs)
			}
			srcFlip, err := src.Eval(flipped)
			if err != nil {
				t.Fatal(err)
			}
			if ValueOf(srcFlip, out) != ValueOf(dstVals, tr2(out)) {
				t.Fatalf("round %d: inverted-wiring copy differs on %v", round, inputs)
			}
		}
	}
}

func TestCopyIntoBadInputCount(t *testing.T) {
	src := New()
	src.Input()
	dst := New()
	if _, err := src.CopyInto(dst, nil); err == nil {
		t.Error("mismatched input map accepted")
	}
}
