package circuit

// Word is a little-endian vector of signals (index 0 = LSB).
type Word []Signal

// InputWord creates n fresh inputs as a word.
func (c *Circuit) InputWord(n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = c.Input()
	}
	return w
}

// ConstWord encodes val as an n-bit word.
func (c *Circuit) ConstWord(n int, val uint64) Word {
	w := make(Word, n)
	for i := range w {
		if val&(1<<uint(i)) != 0 {
			w[i] = True
		} else {
			w[i] = False
		}
	}
	return w
}

// halfAdder returns (sum, carry).
func (c *Circuit) halfAdder(a, b Signal) (Signal, Signal) {
	return c.Xor(a, b), c.And(a, b)
}

// fullAdder returns (sum, carry).
func (c *Circuit) fullAdder(a, b, cin Signal) (Signal, Signal) {
	s1, c1 := c.halfAdder(a, b)
	s2, c2 := c.halfAdder(s1, cin)
	return s2, c.Or(c1, c2)
}

// RippleAdd returns a + b (+cin) as an n-bit word plus carry-out, using a
// ripple-carry structure.
func (c *Circuit) RippleAdd(a, b Word, cin Signal) (Word, Signal) {
	n := len(a)
	out := make(Word, n)
	carry := cin
	for i := 0; i < n; i++ {
		out[i], carry = c.fullAdder(a[i], b[i], carry)
	}
	return out, carry
}

// CarrySelectAdd returns a + b (+cin) using a carry-select structure: the
// upper half is computed twice (carry 0 and carry 1) and selected by the
// lower half's carry-out. Functionally identical to RippleAdd but
// structurally different — exactly what equivalence-checking miters need.
func (c *Circuit) CarrySelectAdd(a, b Word, cin Signal) (Word, Signal) {
	n := len(a)
	if n <= 2 {
		return c.RippleAdd(a, b, cin)
	}
	half := n / 2
	lo, carryLo := c.RippleAdd(a[:half], b[:half], cin)
	hi0, cout0 := c.RippleAdd(a[half:], b[half:], False)
	hi1, cout1 := c.RippleAdd(a[half:], b[half:], True)
	out := make(Word, n)
	copy(out, lo)
	for i := half; i < n; i++ {
		out[i] = c.Mux(carryLo, hi1[i-half], hi0[i-half])
	}
	return out, c.Mux(carryLo, cout1, cout0)
}

// KoggeStoneAdd returns a + b (+cin) using the Kogge–Stone parallel-prefix
// structure: generate/propagate pairs combined over log n prefix levels.
// Functionally identical to RippleAdd, structurally very different — a
// third adder architecture for equivalence miters.
func (c *Circuit) KoggeStoneAdd(a, b Word, cin Signal) (Word, Signal) {
	n := len(a)
	g := make([]Signal, n) // generate
	p := make([]Signal, n) // propagate
	for i := 0; i < n; i++ {
		g[i] = c.And(a[i], b[i])
		p[i] = c.Xor(a[i], b[i])
	}
	// Prefix combine: after the sweep, g[i] is "carry out of position i
	// assuming cin=0"; fold cin through the propagate chain separately.
	pg := append([]Signal(nil), g...)
	pp := append([]Signal(nil), p...)
	for d := 1; d < n; d <<= 1 {
		ng := append([]Signal(nil), pg...)
		np := append([]Signal(nil), pp...)
		for i := d; i < n; i++ {
			ng[i] = c.Or(pg[i], c.And(pp[i], pg[i-d]))
			np[i] = c.And(pp[i], pp[i-d])
		}
		pg, pp = ng, np
	}
	carryInto := make([]Signal, n+1) // carry into position i
	carryInto[0] = cin
	for i := 1; i <= n; i++ {
		// carry into i = prefix-generate(i-1) OR prefix-propagate(i-1)&cin
		carryInto[i] = c.Or(pg[i-1], c.And(pp[i-1], cin))
	}
	out := make(Word, n)
	for i := 0; i < n; i++ {
		out[i] = c.Xor(p[i], carryInto[i])
	}
	return out, carryInto[n]
}

// Sub returns a - b (two's complement) and the final borrow-free carry.
func (c *Circuit) Sub(a, b Word) (Word, Signal) {
	nb := make(Word, len(b))
	for i := range b {
		nb[i] = b[i].Not()
	}
	return c.RippleAdd(a, nb, True)
}

// Inc returns a + 1.
func (c *Circuit) Inc(a Word) Word {
	out, _ := c.RippleAdd(a, c.ConstWord(len(a), 1), False)
	return out
}

// MulShiftAdd returns the low len(a) bits of a*b via the shift-add array
// multiplier.
func (c *Circuit) MulShiftAdd(a, b Word) Word {
	n := len(a)
	acc := c.ConstWord(n, 0)
	for i := 0; i < n; i++ {
		// partial = (a << i) masked by b[i]
		partial := make(Word, n)
		for j := 0; j < n; j++ {
			if j < i {
				partial[j] = False
			} else {
				partial[j] = c.And(a[j-i], b[i])
			}
		}
		acc, _ = c.RippleAdd(acc, partial, False)
	}
	return acc
}

// MulDiagonal returns the low len(a) bits of a*b via a column-compression
// (carry-save style) structure: partial products are summed column by
// column. Functionally identical to MulShiftAdd, structurally different.
func (c *Circuit) MulDiagonal(a, b Word) Word {
	n := len(a)
	cols := make([][]Signal, n)
	for i := 0; i < n; i++ {
		for j := 0; i+j < n; j++ {
			cols[i+j] = append(cols[i+j], c.And(a[j], b[i]))
		}
	}
	out := make(Word, n)
	for k := 0; k < n; k++ {
		col := cols[k]
		for len(col) > 1 {
			if len(col) >= 3 {
				s, carry := c.fullAdder(col[0], col[1], col[2])
				col = append(col[3:], s)
				if k+1 < n {
					cols[k+1] = append(cols[k+1], carry)
				}
			} else {
				s, carry := c.halfAdder(col[0], col[1])
				col = append(col[2:], s)
				if k+1 < n {
					cols[k+1] = append(cols[k+1], carry)
				}
			}
		}
		if len(col) == 0 {
			out[k] = False
		} else {
			out[k] = col[0]
		}
		cols[k] = nil
	}
	return out
}

// MuxWord returns sel ? a : b bitwise.
func (c *Circuit) MuxWord(sel Signal, a, b Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = c.Mux(sel, a[i], b[i])
	}
	return out
}

// XorWord returns a XOR b bitwise.
func (c *Circuit) XorWord(a, b Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = c.Xor(a[i], b[i])
	}
	return out
}

// AndWord returns a AND b bitwise.
func (c *Circuit) AndWord(a, b Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = c.And(a[i], b[i])
	}
	return out
}

// OrWord returns a OR b bitwise.
func (c *Circuit) OrWord(a, b Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = c.Or(a[i], b[i])
	}
	return out
}

// NotWord inverts every bit.
func (c *Circuit) NotWord(a Word) Word {
	out := make(Word, len(a))
	for i := range a {
		out[i] = a[i].Not()
	}
	return out
}

// RotLeftConst rotates the word left by k positions.
func (c *Circuit) RotLeftConst(a Word, k int) Word {
	n := len(a)
	if n == 0 {
		return a
	}
	k = ((k % n) + n) % n
	out := make(Word, n)
	for i := 0; i < n; i++ {
		out[(i+k)%n] = a[i]
	}
	return out
}

// ShiftLeftConst shifts left by k, filling with zeros.
func (c *Circuit) ShiftLeftConst(a Word, k int) Word {
	n := len(a)
	out := make(Word, n)
	for i := 0; i < n; i++ {
		if i < k {
			out[i] = False
		} else {
			out[i] = a[i-k]
		}
	}
	return out
}

// BarrelRotLeft rotates a left by the amount encoded in sh (little-endian),
// using the classic logarithmic barrel structure: stage i conditionally
// rotates by 2^i under sh[i].
func (c *Circuit) BarrelRotLeft(a Word, sh Word) Word {
	out := a
	for i := 0; i < len(sh); i++ {
		rotated := c.RotLeftConst(out, 1<<uint(i))
		out = c.MuxWord(sh[i], rotated, out)
	}
	return out
}

// NaiveRotLeft rotates a left by the amount in sh by decoding the shift
// amount and or-ing one full rotation per possible value — functionally the
// barrel rotator, structurally very different.
func (c *Circuit) NaiveRotLeft(a Word, sh Word) Word {
	n := len(a)
	total := 1 << uint(len(sh))
	out := make(Word, n)
	for i := range out {
		out[i] = False
	}
	for amt := 0; amt < total; amt++ {
		isAmt := True
		for b := 0; b < len(sh); b++ {
			bit := sh[b]
			if amt&(1<<uint(b)) == 0 {
				bit = bit.Not()
			}
			isAmt = c.And(isAmt, bit)
		}
		rotated := c.RotLeftConst(a, amt%n)
		for i := 0; i < n; i++ {
			out[i] = c.Or(out[i], c.And(isAmt, rotated[i]))
		}
	}
	return out
}

// EqWord returns a single signal: a == b.
func (c *Circuit) EqWord(a, b Word) Signal {
	eq := True
	for i := range a {
		eq = c.And(eq, c.Xnor(a[i], b[i]))
	}
	return eq
}

// NeqWord returns a != b.
func (c *Circuit) NeqWord(a, b Word) Signal { return c.EqWord(a, b).Not() }

// WordVal packs a simulated word into a uint64 (for tests).
func WordVal(vals []bool, w Word) uint64 {
	var out uint64
	for i, s := range w {
		if ValueOf(vals, s) {
			out |= 1 << uint(i)
		}
	}
	return out
}
