package circuit

// Sorting networks over single-bit lines: a compare-and-swap on bits is
// (AND, OR). Two structurally different networks sorting the same inputs
// are functionally equivalent, giving another classic equivalence-checking
// family (gen.SorterEquiv).

// cas performs a compare-and-swap: output (min, max) = (AND, OR).
func (c *Circuit) cas(a, b Signal) (Signal, Signal) {
	return c.And(a, b), c.Or(a, b)
}

// OddEvenMergeSort sorts the lines ascending (index 0 = minimum) with
// Batcher's odd-even merge network. The line count is padded internally to
// a power of two with constant-True lines (which sort to the top and are
// dropped).
func (c *Circuit) OddEvenMergeSort(lines []Signal) []Signal {
	n := 1
	for n < len(lines) {
		n <<= 1
	}
	work := make([]Signal, n)
	copy(work, lines)
	for i := len(lines); i < n; i++ {
		work[i] = True
	}
	c.oddEvenSort(work, 0, n)
	return work[:len(lines)]
}

func (c *Circuit) oddEvenSort(w []Signal, lo, n int) {
	if n <= 1 {
		return
	}
	m := n / 2
	c.oddEvenSort(w, lo, m)
	c.oddEvenSort(w, lo+m, m)
	c.oddEvenMerge(w, lo, n, 1)
}

func (c *Circuit) oddEvenMerge(w []Signal, lo, n, step int) {
	m := step * 2
	if m >= n {
		if lo+step < len(w) {
			w[lo], w[lo+step] = c.cas(w[lo], w[lo+step])
		}
		return
	}
	c.oddEvenMerge(w, lo, n, m)
	c.oddEvenMerge(w, lo+step, n, m)
	for i := lo + step; i+step < lo+n; i += m {
		w[i], w[i+step] = c.cas(w[i], w[i+step])
	}
}

// InsertionSortNetwork sorts the lines ascending with the naive O(n²)
// network of adjacent compare-and-swaps.
func (c *Circuit) InsertionSortNetwork(lines []Signal) []Signal {
	w := append([]Signal(nil), lines...)
	for i := 1; i < len(w); i++ {
		for j := i; j > 0; j-- {
			w[j-1], w[j] = c.cas(w[j-1], w[j])
		}
	}
	return w
}
