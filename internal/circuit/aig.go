package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// AIG lowering and the ASCII AIGER ("aag") interchange format — the
// standard exchange representation for gate-level verification problems.
// Or/Xor/Mux gates are lowered to and-inverter form with structural
// hashing, so a round trip through the format preserves functions (not
// node counts).

// LowerToAIG returns an equivalent circuit containing only inputs and AND
// gates (plus free inversions), together with a signal translation from
// this circuit into the lowered one.
func (c *Circuit) LowerToAIG() (*Circuit, func(Signal) Signal, error) {
	dst := New()
	type key struct{ a, b Signal }
	hash := map[key]Signal{}
	and := func(a, b Signal) Signal {
		if b < a {
			a, b = b, a
		}
		if s, ok := hash[key{a, b}]; ok {
			return s
		}
		s := dst.And(a, b)
		hash[key{a, b}] = s
		return s
	}
	or := func(a, b Signal) Signal { return and(a.Not(), b.Not()).Not() }

	nodeMap := make([]Signal, len(c.gates))
	nodeMap[0] = False
	translate := func(s Signal) Signal {
		out := nodeMap[s.node()]
		if s.inverted() {
			out = out.Not()
		}
		return out
	}
	for id := 1; id < len(c.gates); id++ {
		g := c.gates[id]
		switch g.Op {
		case OpInput:
			nodeMap[id] = dst.Input()
		case OpAnd:
			nodeMap[id] = and(translate(g.In[0]), translate(g.In[1]))
		case OpOr:
			nodeMap[id] = or(translate(g.In[0]), translate(g.In[1]))
		case OpXor:
			a, b := translate(g.In[0]), translate(g.In[1])
			nodeMap[id] = or(and(a, b.Not()), and(a.Not(), b))
		case OpMux:
			s, a, b := translate(g.In[0]), translate(g.In[1]), translate(g.In[2])
			nodeMap[id] = or(and(s, a), and(s.Not(), b))
		default:
			return nil, nil, fmt.Errorf("circuit: LowerToAIG: unexpected op %v", g.Op)
		}
	}
	for _, o := range c.outputs {
		dst.Output(translate(o))
	}
	return dst, translate, nil
}

// aigLit encodes a signal in AIGER literal numbering for a circuit already
// in AIG form: node i becomes AIGER variable i, literal 2i (+1 inverted);
// the constant-false node 0 maps to AIGER's constant 0/1 naturally.
func aigLit(s Signal) int { return int(s) }

func sigFromAIG(l int) Signal { return Signal(l) }

// WriteAAG writes the circuit in ASCII AIGER (aag) format, reencoding
// variables into the canonical order (inputs first, then AND gates in
// topological order). The circuit must be in AIG form (inputs and AND
// gates only) — call LowerToAIG first for general circuits. Registered
// outputs become AIGER outputs.
func (c *Circuit) WriteAAG(w io.Writer) error {
	nAnds := 0
	for _, g := range c.gates {
		switch g.Op {
		case OpConst, OpInput:
		case OpAnd:
			nAnds++
		default:
			return fmt.Errorf("circuit: WriteAAG: gate %v is not AND/input (lower first)", g.Op)
		}
	}
	// Reencode: input node -> var 1..nIn, AND nodes -> nIn+1.. in id order.
	remap := make([]int, len(c.gates))
	for i, id := range c.inputs {
		remap[id] = i + 1
	}
	nextVar := len(c.inputs) + 1
	for id, g := range c.gates {
		if g.Op == OpAnd {
			remap[id] = nextVar
			nextVar++
		}
	}
	lit := func(s Signal) int {
		l := remap[s.node()] * 2
		if s.inverted() {
			l++
		}
		return l
	}

	bw := bufio.NewWriter(w)
	maxVar := nextVar - 1
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", maxVar, len(c.inputs), len(c.outputs), nAnds)
	for i := range c.inputs {
		fmt.Fprintf(bw, "%d\n", (i+1)*2)
	}
	for _, o := range c.outputs {
		fmt.Fprintf(bw, "%d\n", lit(o))
	}
	for id, g := range c.gates {
		if g.Op != OpAnd {
			continue
		}
		fmt.Fprintf(bw, "%d %d %d\n",
			remap[id]*2, lit(g.In[0]), lit(g.In[1]))
	}
	return bw.Flush()
}

// ReadAAG parses an ASCII AIGER (aag) combinational file (no latches).
// AND definitions may appear in any topological order as long as operands
// precede definitions, which the official format guarantees for
// reencoded files; out-of-order files are rejected.
func ReadAAG(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("aag: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aag: bad header %q", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		n, err := strconv.Atoi(header[i+1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("aag: bad header field %q", header[i+1])
		}
		nums[i] = n
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aag: latches are not supported (combinational only)")
	}

	c := New()
	// Node IDs must match AIGER variables: inputs occupy 1..nIn by
	// convention in reencoded files; enforce it.
	readInt := func() (int, error) {
		if !sc.Scan() {
			return 0, fmt.Errorf("aag: truncated file")
		}
		return strconv.Atoi(strings.TrimSpace(sc.Text()))
	}
	for i := 0; i < nIn; i++ {
		lit, err := readInt()
		if err != nil {
			return nil, err
		}
		in := c.Input()
		if aigLit(in) != lit {
			return nil, fmt.Errorf("aag: input literal %d out of order (want %d)", lit, aigLit(in))
		}
	}
	outs := make([]int, nOut)
	for i := range outs {
		lit, err := readInt()
		if err != nil {
			return nil, err
		}
		outs[i] = lit
	}
	for i := 0; i < nAnd; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("aag: truncated AND section")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != 3 {
			return nil, fmt.Errorf("aag: bad AND line %q", sc.Text())
		}
		var lhs, a, b int
		var err error
		if lhs, err = strconv.Atoi(fields[0]); err != nil {
			return nil, err
		}
		if a, err = strconv.Atoi(fields[1]); err != nil {
			return nil, err
		}
		if b, err = strconv.Atoi(fields[2]); err != nil {
			return nil, err
		}
		if lhs%2 != 0 {
			return nil, fmt.Errorf("aag: AND lhs %d is negated", lhs)
		}
		if a >= lhs || b >= lhs {
			return nil, fmt.Errorf("aag: AND %d uses operand defined later", lhs)
		}
		// The builder may fold the AND (constant operands etc.); that
		// would desynchronize node numbering, so build the node directly.
		got := c.newGate(OpAnd, sigFromAIG(a), sigFromAIG(b), 0)
		if aigLit(got) != lhs {
			return nil, fmt.Errorf("aag: AND literal %d out of dense order (want %d)", lhs, aigLit(got))
		}
	}
	if len(c.gates)-1 != maxVar {
		return nil, fmt.Errorf("aag: header declares %d variables, file defines %d", maxVar, len(c.gates)-1)
	}
	for _, o := range outs {
		if o/2 > maxVar {
			return nil, fmt.Errorf("aag: output literal %d out of range", o)
		}
		c.Output(sigFromAIG(o))
	}
	return c, nil
}
