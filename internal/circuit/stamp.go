package circuit

import "fmt"

// CopyInto stamps this circuit's logic into dst, substituting dst signals
// for the source inputs: inputMap[i] drives the source's i-th input (in
// Input() creation order). It returns a translation function mapping any
// source signal to the corresponding dst signal. Registered outputs are
// not copied — translate them explicitly.
//
// Stamping is how sequential designs are unrolled: the transition logic is
// copied once per time step with the previous step's next-state signals
// substituted for the state inputs (see internal/seq).
func (c *Circuit) CopyInto(dst *Circuit, inputMap []Signal) (func(Signal) Signal, error) {
	if len(inputMap) != len(c.inputs) {
		return nil, fmt.Errorf("circuit: CopyInto got %d substitutions for %d inputs",
			len(inputMap), len(c.inputs))
	}
	// nodeMap[i] is the dst signal corresponding to source node i (in
	// positive polarity).
	nodeMap := make([]Signal, len(c.gates))
	nodeMap[0] = False
	next := 0
	translate := func(s Signal) Signal {
		out := nodeMap[s.node()]
		if s.inverted() {
			out = out.Not()
		}
		return out
	}
	for id := 1; id < len(c.gates); id++ {
		g := c.gates[id]
		switch g.Op {
		case OpInput:
			nodeMap[id] = inputMap[next]
			next++
		case OpAnd:
			nodeMap[id] = dst.And(translate(g.In[0]), translate(g.In[1]))
		case OpOr:
			nodeMap[id] = dst.Or(translate(g.In[0]), translate(g.In[1]))
		case OpXor:
			nodeMap[id] = dst.Xor(translate(g.In[0]), translate(g.In[1]))
		case OpMux:
			nodeMap[id] = dst.Mux(translate(g.In[0]), translate(g.In[1]), translate(g.In[2]))
		default:
			return nil, fmt.Errorf("circuit: CopyInto: unexpected op %v at node %d", g.Op, id)
		}
	}
	return translate, nil
}
