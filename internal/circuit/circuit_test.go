package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/solver"
)

func TestGateSimulation(t *testing.T) {
	c := New()
	a := c.Input()
	b := c.Input()
	and := c.And(a, b)
	or := c.Or(a, b)
	xor := c.Xor(a, b)
	mux := c.Mux(a, b, b.Not())
	for _, tc := range []struct{ a, b bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		vals, err := c.Eval([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if got := ValueOf(vals, and); got != (tc.a && tc.b) {
			t.Errorf("and(%v,%v) = %v", tc.a, tc.b, got)
		}
		if got := ValueOf(vals, or); got != (tc.a || tc.b) {
			t.Errorf("or(%v,%v) = %v", tc.a, tc.b, got)
		}
		if got := ValueOf(vals, xor); got != (tc.a != tc.b) {
			t.Errorf("xor(%v,%v) = %v", tc.a, tc.b, got)
		}
		want := tc.b
		if tc.a {
			want = tc.b
		} else {
			want = !tc.b
		}
		if got := ValueOf(vals, mux); got != want {
			t.Errorf("mux(%v; %v) = %v, want %v", tc.a, tc.b, got, want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	c := New()
	a := c.Input()
	if c.And(a, False) != False || c.And(False, a) != False {
		t.Error("And with False")
	}
	if c.And(a, True) != a {
		t.Error("And with True")
	}
	if c.Or(a, True) != True {
		t.Error("Or with True")
	}
	if c.Or(a, False) != a {
		t.Error("Or with False")
	}
	if c.Xor(a, False) != a || c.Xor(a, True) != a.Not() {
		t.Error("Xor with constants")
	}
	if c.And(a, a) != a || c.And(a, a.Not()) != False {
		t.Error("And idempotence/complement")
	}
	if c.Or(a, a.Not()) != True {
		t.Error("Or complement")
	}
	if c.Xor(a, a) != False || c.Xor(a, a.Not()) != True {
		t.Error("Xor self")
	}
	if c.Mux(True, a, a.Not()) != a || c.Mux(False, a, a.Not()) != a.Not() {
		t.Error("Mux constant select")
	}
	before := c.NumGates()
	if c.Mux(c.Input(), a, a) != a {
		t.Error("Mux equal branches")
	}
	if c.NumGates() != before+1 { // only the new input
		t.Error("Mux equal branches created gates")
	}
}

func TestNotIsFree(t *testing.T) {
	c := New()
	a := c.Input()
	n := c.NumGates()
	b := c.Not(a)
	if c.NumGates() != n {
		t.Error("Not created a gate")
	}
	if b.Not() != a {
		t.Error("double negation is not identity")
	}
}

func TestEvalInputMismatch(t *testing.T) {
	c := New()
	c.Input()
	if _, err := c.Eval(nil); err == nil {
		t.Error("missing inputs accepted")
	}
}

func TestWordArithmetic(t *testing.T) {
	const n = 6
	c := New()
	aw := c.InputWord(n)
	bw := c.InputWord(n)
	ripple, _ := c.RippleAdd(aw, bw, False)
	csel, _ := c.CarrySelectAdd(aw, bw, False)
	sub, _ := c.Sub(aw, bw)
	inc := c.Inc(aw)
	mul1 := c.MulShiftAdd(aw, bw)
	mul2 := c.MulDiagonal(aw, bw)

	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 200; iter++ {
		a := uint64(rng.Intn(1 << n))
		b := uint64(rng.Intn(1 << n))
		inputs := make([]bool, 2*n)
		for i := 0; i < n; i++ {
			inputs[i] = a&(1<<uint(i)) != 0
			inputs[n+i] = b&(1<<uint(i)) != 0
		}
		vals, err := c.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1<<n - 1)
		if got := WordVal(vals, ripple); got != (a+b)&mask {
			t.Fatalf("ripple %d+%d = %d", a, b, got)
		}
		if got := WordVal(vals, csel); got != (a+b)&mask {
			t.Fatalf("carry-select %d+%d = %d", a, b, got)
		}
		if got := WordVal(vals, sub); got != (a-b)&mask {
			t.Fatalf("sub %d-%d = %d", a, b, got)
		}
		if got := WordVal(vals, inc); got != (a+1)&mask {
			t.Fatalf("inc %d = %d", a, got)
		}
		if got := WordVal(vals, mul1); got != (a*b)&mask {
			t.Fatalf("mul-shift-add %d*%d = %d", a, b, got)
		}
		if got := WordVal(vals, mul2); got != (a*b)&mask {
			t.Fatalf("mul-diagonal %d*%d = %d", a, b, got)
		}
	}
}

func TestRotations(t *testing.T) {
	const n = 8
	c := New()
	aw := c.InputWord(n)
	sh := c.InputWord(3)
	barrel := c.BarrelRotLeft(aw, sh)
	naive := c.NaiveRotLeft(aw, sh)
	rot3 := c.RotLeftConst(aw, 3)
	shl2 := c.ShiftLeftConst(aw, 2)

	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 200; iter++ {
		a := uint64(rng.Intn(1 << n))
		s := uint64(rng.Intn(8))
		inputs := make([]bool, n+3)
		for i := 0; i < n; i++ {
			inputs[i] = a&(1<<uint(i)) != 0
		}
		for i := 0; i < 3; i++ {
			inputs[n+i] = s&(1<<uint(i)) != 0
		}
		vals, err := c.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}
		mask := uint64(1<<n - 1)
		wantRot := ((a << s) | (a >> (n - s))) & mask
		if s == 0 {
			wantRot = a
		}
		if got := WordVal(vals, barrel); got != wantRot {
			t.Fatalf("barrel rot(%d, %d) = %d, want %d", a, s, got, wantRot)
		}
		if got := WordVal(vals, naive); got != wantRot {
			t.Fatalf("naive rot(%d, %d) = %d, want %d", a, s, got, wantRot)
		}
		if got := WordVal(vals, rot3); got != ((a<<3)|(a>>(n-3)))&mask {
			t.Fatalf("rot3(%d) = %d", a, got)
		}
		if got := WordVal(vals, shl2); got != (a<<2)&mask {
			t.Fatalf("shl2(%d) = %d", a, got)
		}
	}
}

func TestKoggeStoneAdd(t *testing.T) {
	const n = 6
	c := New()
	aw := c.InputWord(n)
	bw := c.InputWord(n)
	cin := c.Input()
	sum, cout := c.KoggeStoneAdd(aw, bw, cin)
	rng := rand.New(rand.NewSource(8))
	for iter := 0; iter < 300; iter++ {
		a := uint64(rng.Intn(1 << n))
		b := uint64(rng.Intn(1 << n))
		ci := uint64(rng.Intn(2))
		inputs := make([]bool, 2*n+1)
		for i := 0; i < n; i++ {
			inputs[i] = a&(1<<uint(i)) != 0
			inputs[n+i] = b&(1<<uint(i)) != 0
		}
		inputs[2*n] = ci == 1
		vals, err := c.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}
		total := a + b + ci
		if got := WordVal(vals, sum); got != total&(1<<n-1) {
			t.Fatalf("kogge-stone %d+%d+%d = %d", a, b, ci, got)
		}
		if got := ValueOf(vals, cout); got != (total>>n == 1) {
			t.Fatalf("kogge-stone carry(%d+%d+%d) = %v", a, b, ci, got)
		}
	}
}

func TestSortingNetworks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		c := New()
		in := make([]Signal, n)
		for i := range in {
			in[i] = c.Input()
		}
		batcher := c.OddEvenMergeSort(in)
		insertion := c.InsertionSortNetwork(in)
		for mask := 0; mask < 1<<n; mask++ {
			inputs := make([]bool, n)
			ones := 0
			for i := range inputs {
				inputs[i] = mask&(1<<i) != 0
				if inputs[i] {
					ones++
				}
			}
			vals, err := c.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				want := i >= n-ones // ones sort to the top
				if got := ValueOf(vals, batcher[i]); got != want {
					t.Fatalf("n=%d mask=%b batcher[%d] = %v, want %v", n, mask, i, got, want)
				}
				if got := ValueOf(vals, insertion[i]); got != want {
					t.Fatalf("n=%d mask=%b insertion[%d] = %v, want %v", n, mask, i, got, want)
				}
			}
		}
	}
}

func TestWordPredicates(t *testing.T) {
	const n = 4
	c := New()
	aw := c.InputWord(n)
	bw := c.InputWord(n)
	eq := c.EqWord(aw, bw)
	for a := uint64(0); a < 1<<n; a++ {
		for b := uint64(0); b < 1<<n; b++ {
			inputs := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				inputs[i] = a&(1<<uint(i)) != 0
				inputs[n+i] = b&(1<<uint(i)) != 0
			}
			vals, _ := c.Eval(inputs)
			if got := ValueOf(vals, eq); got != (a == b) {
				t.Fatalf("eq(%d,%d) = %v", a, b, got)
			}
		}
	}
}

func TestConstWord(t *testing.T) {
	c := New()
	w := c.ConstWord(8, 0xA5)
	vals, _ := c.Eval(nil)
	if got := WordVal(vals, w); got != 0xA5 {
		t.Errorf("ConstWord = %#x", got)
	}
}

// TestTseitinAgreesWithSimulation is the central circuit test: for random
// circuits and random input vectors, the Tseitin CNF with the inputs pinned
// must be satisfiable exactly when the asserted output simulates to true.
func TestTseitinAgreesWithSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 60; round++ {
		c := New()
		nIn := 3 + rng.Intn(4)
		pool := make([]Signal, 0, 32)
		for i := 0; i < nIn; i++ {
			pool = append(pool, c.Input())
		}
		for g := 0; g < 10+rng.Intn(20); g++ {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			if rng.Intn(2) == 0 {
				a = a.Not()
			}
			var s Signal
			switch rng.Intn(4) {
			case 0:
				s = c.And(a, b)
			case 1:
				s = c.Or(a, b)
			case 2:
				s = c.Xor(a, b)
			default:
				s = c.Mux(pool[rng.Intn(len(pool))], a, b)
			}
			pool = append(pool, s)
		}
		out := pool[len(pool)-1]

		inputs := make([]bool, nIn)
		for i := range inputs {
			inputs[i] = rng.Intn(2) == 0
		}
		vals, err := c.Eval(inputs)
		if err != nil {
			t.Fatal(err)
		}
		want := ValueOf(vals, out)

		// Pin inputs, assert output true; SAT iff simulation says true.
		f := c.ToCNF(out)
		for i, v := range c.InputVars() {
			if inputs[i] {
				f.AddClause(cnf.Clause{cnf.PosLit(v)})
			} else {
				f.AddClause(cnf.Clause{cnf.NegLit(v)})
			}
		}
		st, _, _, _, err := solver.Solve(f, solver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want && st != solver.Sat {
			t.Fatalf("round %d: simulation true but CNF %v", round, st)
		}
		if !want && st != solver.Unsat {
			t.Fatalf("round %d: simulation false but CNF %v", round, st)
		}
	}
}

func TestTseitinAssertFalseIsUnsat(t *testing.T) {
	c := New()
	if st, _, _, _, _ := solver.Solve(c.ToCNF(False), solver.Options{}); st != solver.Unsat {
		t.Errorf("assert False: %v", st)
	}
	if st, _, _, _, _ := solver.Solve(c.ToCNF(True), solver.Options{}); st != solver.Sat {
		t.Errorf("assert True: %v", st)
	}
}

func TestOutputsRegistration(t *testing.T) {
	c := New()
	a := c.Input()
	idx := c.Output(a.Not())
	if idx != 0 || len(c.Outputs()) != 1 {
		t.Fatal("output registration broken")
	}
	outs, err := c.EvalOutputs([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != false {
		t.Error("EvalOutputs wrong")
	}
}
