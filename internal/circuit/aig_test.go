package circuit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomCircuit(rng *rand.Rand, nIn int) (*Circuit, Signal) {
	c := New()
	pool := make([]Signal, 0, 32)
	for i := 0; i < nIn; i++ {
		pool = append(pool, c.Input())
	}
	for g := 0; g < 8+rng.Intn(20); g++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		if rng.Intn(2) == 0 {
			a = a.Not()
		}
		var s Signal
		switch rng.Intn(4) {
		case 0:
			s = c.And(a, b)
		case 1:
			s = c.Or(a, b)
		case 2:
			s = c.Xor(a, b)
		default:
			s = c.Mux(pool[rng.Intn(len(pool))], a, b)
		}
		pool = append(pool, s)
	}
	out := pool[len(pool)-1]
	c.Output(out)
	return c, out
}

func TestLowerToAIGPreservesFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for round := 0; round < 60; round++ {
		nIn := 2 + rng.Intn(5)
		src, out := randomCircuit(rng, nIn)
		aig, translate, err := src.LowerToAIG()
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range aigGates(aig) {
			if g != OpConst && g != OpInput && g != OpAnd {
				t.Fatalf("non-AIG gate %v survives lowering", g)
			}
		}
		for mask := 0; mask < 1<<nIn; mask++ {
			inputs := make([]bool, nIn)
			for i := range inputs {
				inputs[i] = mask&(1<<i) != 0
			}
			sv, err := src.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			av, err := aig.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if ValueOf(sv, out) != ValueOf(av, translate(out)) {
				t.Fatalf("round %d: lowering changed the function on %v", round, inputs)
			}
		}
	}
}

func aigGates(c *Circuit) []GateOp {
	ops := make([]GateOp, len(c.gates))
	for i, g := range c.gates {
		ops[i] = g.Op
	}
	return ops
}

func TestAAGRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for round := 0; round < 40; round++ {
		nIn := 2 + rng.Intn(4)
		src, out := randomCircuit(rng, nIn)
		aig, translate, err := src.LowerToAIG()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := aig.WriteAAG(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAAG(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, buf.String())
		}
		if back.NumInputs() != nIn || len(back.Outputs()) != 1 {
			t.Fatalf("round %d: shape changed: %d inputs, %d outputs",
				round, back.NumInputs(), len(back.Outputs()))
		}
		for mask := 0; mask < 1<<nIn; mask++ {
			inputs := make([]bool, nIn)
			for i := range inputs {
				inputs[i] = mask&(1<<i) != 0
			}
			sv, err := src.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			bv, err := back.Eval(inputs)
			if err != nil {
				t.Fatal(err)
			}
			if ValueOf(sv, out) != ValueOf(bv, back.Outputs()[0]) {
				t.Fatalf("round %d: AAG round trip changed the function on %v", round, inputs)
			}
		}
		_ = translate
	}
}

func TestWriteAAGRejectsRichGates(t *testing.T) {
	c := New()
	a := c.Input()
	b := c.Input()
	c.Output(c.Xor(a, b))
	var buf bytes.Buffer
	if err := c.WriteAAG(&buf); err == nil {
		t.Error("XOR gate accepted without lowering")
	}
}

func TestReadAAGErrors(t *testing.T) {
	cases := []string{
		"",
		"aig 1 1 0 0 0\n2\n",            // binary header not supported
		"aag 1 1 1 0 0\n2\n2 3\n",       // latches unsupported
		"aag x 1 0 0 0\n2\n",            // junk counts
		"aag 1 1 0 1 0\n2\n",            // truncated outputs
		"aag 2 1 0 0 1\n2\n4 6 2\n",     // AND uses operand defined later
		"aag 2 1 0 0 1\n2\n5 2 2\n",     // negated AND lhs
		"aag 5 1 0 0 1\n2\n4 2 2\n",     // header/variable count mismatch
		"aag 2 1 0 1 1\n2\n99\n4 2 2\n", // output literal out of range
	}
	for _, in := range cases {
		if _, err := ReadAAG(strings.NewReader(in)); err == nil {
			t.Errorf("ReadAAG(%q) succeeded", in)
		}
	}
}

func TestReadAAGHandExample(t *testing.T) {
	// A two-input AND with inverted output: aag reencode of ¬(a ∧ b).
	in := "aag 3 2 0 1 1\n2\n4\n7\n6 2 4\n"
	c, err := ReadAAG(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 4; mask++ {
		a, b := mask&1 != 0, mask&2 != 0
		outs, err := c.EvalOutputs([]bool{a, b})
		if err != nil {
			t.Fatal(err)
		}
		if outs[0] != !(a && b) {
			t.Fatalf("NAND(%v,%v) = %v", a, b, outs[0])
		}
	}
}
