// Package circuit provides gate-level combinational circuits with a
// reference simulator and a Tseitin CNF encoder. It is the substrate the
// benchmark generators use to build the equivalence-checking, pipelined-
// datapath and bounded-model-checking style UNSAT instances on which the
// paper's experiments run.
//
// Signals carry an optional inversion bit (AIG style), so NOT gates are
// free. The builder performs light structural simplification (constant
// folding, idempotence, complementation) to keep generated CNFs lean.
// Sequential designs are expressed by explicit unrolling: each cycle's state
// is an ordinary signal vector (see the gen package).
package circuit

import "fmt"

// Signal references a circuit node with an inversion bit in the LSB.
type Signal int32

// The constant-false node is always node 0.
const (
	False Signal = 0
	True  Signal = 1
)

// Not returns the inverted signal.
func (s Signal) Not() Signal { return s ^ 1 }

// node returns the node index of the signal.
func (s Signal) node() int32 { return int32(s) >> 1 }

// inverted reports whether the signal carries an inversion.
func (s Signal) inverted() bool { return s&1 == 1 }

func signalOf(node int32, inv bool) Signal {
	s := Signal(node << 1)
	if inv {
		s |= 1
	}
	return s
}

// GateOp enumerates node kinds.
type GateOp uint8

const (
	OpConst GateOp = iota // node 0 only: constant false
	OpInput
	OpAnd
	OpOr
	OpXor
	OpMux // in[0] ? in[1] : in[2]
)

func (op GateOp) String() string {
	switch op {
	case OpConst:
		return "const"
	case OpInput:
		return "input"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	case OpMux:
		return "mux"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Gate is one circuit node.
type Gate struct {
	Op GateOp
	In [3]Signal // used entries depend on Op (2 for and/or/xor, 3 for mux)
}

// Circuit is a combinational netlist under construction.
type Circuit struct {
	gates   []Gate
	inputs  []int32 // node ids of inputs, in creation order
	outputs []Signal
}

// New returns an empty circuit containing only the constant node.
func New() *Circuit {
	return &Circuit{gates: []Gate{{Op: OpConst}}}
}

// NumGates returns the number of nodes (including constant and inputs).
func (c *Circuit) NumGates() int { return len(c.gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// Outputs returns the registered output signals.
func (c *Circuit) Outputs() []Signal { return c.outputs }

// Input creates a fresh primary input.
func (c *Circuit) Input() Signal {
	id := int32(len(c.gates))
	c.gates = append(c.gates, Gate{Op: OpInput})
	c.inputs = append(c.inputs, id)
	return signalOf(id, false)
}

// Output registers s as a primary output and returns its index.
func (c *Circuit) Output(s Signal) int {
	c.outputs = append(c.outputs, s)
	return len(c.outputs) - 1
}

func (c *Circuit) newGate(op GateOp, a, b, sel Signal) Signal {
	id := int32(len(c.gates))
	c.gates = append(c.gates, Gate{Op: op, In: [3]Signal{a, b, sel}})
	return signalOf(id, false)
}

// And returns a AND b with constant folding and local simplification.
func (c *Circuit) And(a, b Signal) Signal {
	switch {
	case a == False || b == False:
		return False
	case a == True:
		return b
	case b == True:
		return a
	case a == b:
		return a
	case a == b.Not():
		return False
	}
	return c.newGate(OpAnd, a, b, 0)
}

// Or returns a OR b.
func (c *Circuit) Or(a, b Signal) Signal {
	switch {
	case a == True || b == True:
		return True
	case a == False:
		return b
	case b == False:
		return a
	case a == b:
		return a
	case a == b.Not():
		return True
	}
	return c.newGate(OpOr, a, b, 0)
}

// Xor returns a XOR b.
func (c *Circuit) Xor(a, b Signal) Signal {
	switch {
	case a == False:
		return b
	case b == False:
		return a
	case a == True:
		return b.Not()
	case b == True:
		return a.Not()
	case a == b:
		return False
	case a == b.Not():
		return True
	}
	return c.newGate(OpXor, a, b, 0)
}

// Not returns the inversion of a (free).
func (c *Circuit) Not(a Signal) Signal { return a.Not() }

// Nand, Nor, Xnor are conveniences over the base gates.
func (c *Circuit) Nand(a, b Signal) Signal { return c.And(a, b).Not() }
func (c *Circuit) Nor(a, b Signal) Signal  { return c.Or(a, b).Not() }
func (c *Circuit) Xnor(a, b Signal) Signal { return c.Xor(a, b).Not() }

// Mux returns sel ? a : b.
func (c *Circuit) Mux(sel, a, b Signal) Signal {
	switch {
	case sel == True:
		return a
	case sel == False:
		return b
	case a == b:
		return a
	case a == b.Not():
		return c.Xnor(sel, a)
	}
	return c.newGate(OpMux, sel, a, b)
}

// Implies returns NOT a OR b.
func (c *Circuit) Implies(a, b Signal) Signal { return c.Or(a.Not(), b) }

// AndN folds AND over the signals (True for the empty list).
func (c *Circuit) AndN(xs ...Signal) Signal {
	out := True
	for _, x := range xs {
		out = c.And(out, x)
	}
	return out
}

// OrN folds OR over the signals (False for the empty list).
func (c *Circuit) OrN(xs ...Signal) Signal {
	out := False
	for _, x := range xs {
		out = c.Or(out, x)
	}
	return out
}

// Eval simulates the circuit on the given input values (one per Input call,
// in order) and returns the value of every node; index the result with
// ValueOf to resolve a Signal.
func (c *Circuit) Eval(inputs []bool) ([]bool, error) {
	if len(inputs) != len(c.inputs) {
		return nil, fmt.Errorf("circuit: %d input values for %d inputs", len(inputs), len(c.inputs))
	}
	vals := make([]bool, len(c.gates))
	next := 0
	for id, g := range c.gates {
		switch g.Op {
		case OpConst:
			vals[id] = false
		case OpInput:
			vals[id] = inputs[next]
			next++
		case OpAnd:
			vals[id] = ValueOf(vals, g.In[0]) && ValueOf(vals, g.In[1])
		case OpOr:
			vals[id] = ValueOf(vals, g.In[0]) || ValueOf(vals, g.In[1])
		case OpXor:
			vals[id] = ValueOf(vals, g.In[0]) != ValueOf(vals, g.In[1])
		case OpMux:
			if ValueOf(vals, g.In[0]) {
				vals[id] = ValueOf(vals, g.In[1])
			} else {
				vals[id] = ValueOf(vals, g.In[2])
			}
		default:
			return nil, fmt.Errorf("circuit: unknown op %v", g.Op)
		}
	}
	return vals, nil
}

// ValueOf resolves a signal against a node valuation from Eval.
func ValueOf(vals []bool, s Signal) bool {
	return vals[s.node()] != s.inverted()
}

// EvalOutputs simulates and returns just the registered outputs.
func (c *Circuit) EvalOutputs(inputs []bool) ([]bool, error) {
	vals, err := c.Eval(inputs)
	if err != nil {
		return nil, err
	}
	outs := make([]bool, len(c.outputs))
	for i, s := range c.outputs {
		outs[i] = ValueOf(vals, s)
	}
	return outs, nil
}
