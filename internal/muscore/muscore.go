// Package muscore extracts unsatisfiable cores with assumption-based
// incremental solving — the alternative technique to the paper's
// verification-based core extraction, provided for comparison (the bench
// harness runs both side by side).
//
// Each clause Ci of the formula is augmented with a fresh selector literal
// ¬si; solving under the assumptions {s1..sm} is unsatisfiable exactly when
// the original formula is, and the solver's final-conflict analysis returns
// the subset of selectors — i.e. of clauses — responsible. Iterating on
// that subset shrinks the core; deletion-based minimization yields a
// minimal unsatisfiable subset (MUS).
package muscore

import (
	"fmt"
	"sort"

	"repro/internal/cnf"
	"repro/internal/solver"
)

// instrument builds the selector-augmented formula: clause i becomes
// Ci ∨ ¬s_i with s_i = variable f.NumVars + i.
func instrument(f *cnf.Formula) *cnf.Formula {
	out := cnf.NewFormula(f.NumVars + f.NumClauses())
	for i, c := range f.Clauses {
		nc := make(cnf.Clause, 0, len(c)+1)
		nc = append(nc, c...)
		nc = append(nc, cnf.NegLit(cnf.Var(f.NumVars+i)))
		out.AddClause(nc)
	}
	return out
}

func selector(f *cnf.Formula, i int) cnf.Lit {
	return cnf.PosLit(cnf.Var(f.NumVars + i))
}

// Extract returns the indices of an unsatisfiable core of f, computed by
// assumption-based solving iterated to a fixpoint. It errors when f is
// satisfiable or the conflict budget runs out.
func Extract(f *cnf.Formula, opts solver.Options) ([]int, error) {
	opts.DisableProof = true
	inst := instrument(f)
	s, err := solver.NewFromFormula(inst, opts)
	if err != nil {
		return nil, err
	}

	current := make([]int, f.NumClauses())
	for i := range current {
		current[i] = i
	}
	for {
		assumps := make([]cnf.Lit, len(current))
		for k, i := range current {
			assumps[k] = selector(f, i)
		}
		switch st := s.RunAssuming(assumps); st {
		case solver.Sat:
			if len(current) == f.NumClauses() {
				return nil, fmt.Errorf("muscore: formula is satisfiable")
			}
			return nil, fmt.Errorf("muscore: internal error: core subset became satisfiable")
		case solver.UnsatAssumptions:
			next := subsetFromConflict(f, s.ConflictSubset())
			if len(next) >= len(current) {
				return current, nil
			}
			current = next
		case solver.Unsat:
			// The instrumented formula is unsatisfiable outright — cannot
			// happen (all selectors false satisfies it) unless the budget
			// logic broke.
			return nil, fmt.Errorf("muscore: instrumented formula unexpectedly UNSAT")
		default:
			return nil, fmt.Errorf("muscore: conflict budget exhausted")
		}
	}
}

// subsetFromConflict maps the failed-assumption literals back to clause
// indices, sorted ascending.
func subsetFromConflict(f *cnf.Formula, lits []cnf.Lit) []int {
	seen := make(map[int]bool, len(lits))
	var out []int
	for _, l := range lits {
		i := int(l.Var()) - f.NumVars
		if i >= 0 && i < f.NumClauses() && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Minimize shrinks a core to a minimal unsatisfiable subset (MUS) by
// deletion: for each clause, test whether the rest of the core is still
// unsatisfiable without it; if so, drop it permanently. The result is
// minimal: removing any single clause makes it satisfiable.
func Minimize(f *cnf.Formula, coreIdx []int, opts solver.Options) ([]int, error) {
	opts.DisableProof = true
	inst := instrument(f)
	s, err := solver.NewFromFormula(inst, opts)
	if err != nil {
		return nil, err
	}

	inCore := make(map[int]bool, len(coreIdx))
	for _, i := range coreIdx {
		inCore[i] = true
	}
	for _, candidate := range coreIdx {
		if !inCore[candidate] {
			continue // already dropped via an earlier conflict subset
		}
		assumps := make([]cnf.Lit, 0, len(inCore)-1)
		for i := range inCore {
			if i != candidate {
				assumps = append(assumps, selector(f, i))
			}
		}
		switch st := s.RunAssuming(assumps); st {
		case solver.UnsatAssumptions:
			// Still unsatisfiable without the candidate: shrink to the
			// conflict subset (which excludes the candidate and possibly
			// more clauses).
			sub := subsetFromConflict(f, s.ConflictSubset())
			inCore = make(map[int]bool, len(sub))
			for _, i := range sub {
				inCore[i] = true
			}
		case solver.Sat:
			// The candidate is necessary; keep it.
		case solver.Unsat:
			return nil, fmt.Errorf("muscore: instrumented formula unexpectedly UNSAT")
		default:
			return nil, fmt.Errorf("muscore: conflict budget exhausted")
		}
	}
	out := make([]int, 0, len(inCore))
	for i := range inCore {
		out = append(out, i)
	}
	sort.Ints(out)
	return out, nil
}
