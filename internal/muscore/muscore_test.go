package muscore

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/solver"
)

func opts() solver.Options {
	return solver.Options{MaxConflicts: 500_000}
}

func bruteSat(f *cnf.Formula) bool {
	n := f.NumVars
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func TestExtractSimple(t *testing.T) {
	// 4 contradiction clauses + 2 junk clauses on fresh vars.
	f := cnf.NewFormula(0).
		Add(1, 2).Add(1, -2).Add(-1, 3).Add(-1, -3).
		Add(7, 8).Add(-7, 9)
	core, err := Extract(f, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(core) == 0 || len(core) > 4 {
		t.Fatalf("core = %v", core)
	}
	for _, i := range core {
		if i >= 4 {
			t.Errorf("junk clause %d in core", i)
		}
	}
	// The core really is unsatisfiable.
	if bruteSat(f.Restrict(core)) {
		t.Errorf("core %v is satisfiable", core)
	}
}

func TestExtractSatisfiableErrors(t *testing.T) {
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 2)
	if _, err := Extract(f, opts()); err == nil {
		t.Error("satisfiable formula accepted")
	}
}

func TestMinimizeIsMinimal(t *testing.T) {
	// PHP(3) plus junk; the MUS must be unsatisfiable and genuinely
	// minimal: removing any clause makes it satisfiable.
	inst := gen.PHP(3)
	f := inst.F.Clone()
	base := f.NumVars
	f.Add(base+1, base+2).Add(-(base + 1), base+3)

	core, err := Extract(f, opts())
	if err != nil {
		t.Fatal(err)
	}
	mus, err := Minimize(f, core, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(mus) == 0 || len(mus) > len(core) {
		t.Fatalf("mus = %v (core %v)", mus, core)
	}
	sub := f.Restrict(mus)
	if bruteSat(sub) {
		t.Fatalf("MUS %v is satisfiable", mus)
	}
	// Minimality: drop each clause in turn; the remainder must be SAT.
	for drop := range mus {
		var keep []int
		for j, i := range mus {
			if j != drop {
				keep = append(keep, i)
			}
		}
		if !bruteSat(f.Restrict(keep)) {
			t.Errorf("MUS not minimal: still UNSAT without clause %d", mus[drop])
		}
	}
}

func TestMinimizeXorChain(t *testing.T) {
	// The whole xor chain is already minimal; Minimize must return all of
	// it unchanged.
	inst := gen.XorChain(5)
	core, err := Extract(inst.F, opts())
	if err != nil {
		t.Fatal(err)
	}
	mus, err := Minimize(inst.F, core, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(mus) != inst.F.NumClauses() {
		t.Errorf("MUS dropped clauses from a minimal formula: %d of %d",
			len(mus), inst.F.NumClauses())
	}
}

func TestExtractAgreesWithVerificationCore(t *testing.T) {
	// Both techniques must produce unsatisfiable subsets; sizes may differ.
	inst := gen.AdderEquiv(8)
	core, err := Extract(inst.F, opts())
	if err != nil {
		t.Fatal(err)
	}
	st, _, _, _, err := solver.Solve(inst.F.Restrict(core), opts())
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.Unsat {
		t.Fatalf("assumption core is not UNSAT: %v", st)
	}
}

func TestIncrementalReuse(t *testing.T) {
	// The same solver instance answers a SAT query after an
	// UnsatAssumptions query (incrementality smoke test).
	f := cnf.NewFormula(0).Add(1, 2).Add(-1, 2).Add(1, -2).Add(-1, -2)
	inst := instrument(f)
	s, err := solver.NewFromFormula(inst, opts())
	if err != nil {
		t.Fatal(err)
	}
	all := make([]cnf.Lit, f.NumClauses())
	for i := range all {
		all[i] = selector(f, i)
	}
	if st := s.RunAssuming(all); st != solver.UnsatAssumptions {
		t.Fatalf("status %v", st)
	}
	if len(s.ConflictSubset()) == 0 {
		t.Fatal("empty conflict subset")
	}
	// Dropping one clause makes it satisfiable.
	if st := s.RunAssuming(all[:3]); st != solver.Sat {
		t.Fatalf("status %v after dropping a clause", st)
	}
}
