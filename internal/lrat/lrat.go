// Package lrat emits, parses and checks LRAT hinted proofs (Cruz-Filipe,
// Heule et al., "Efficient Certified RAT Verification"). An LRAT proof is a
// DRUP proof in which every derived clause carries *hints*: the ordered IDs
// of the clauses whose unit replay re-derives the conflict. Hints turn
// verification from propagation (watch lists, trail search) into a linear
// scan of named antecedents — so a formula verified once with BCP can be
// re-checked arbitrarily often at a fraction of the cost, and the per-step
// checks share no state, so they parallelize trivially.
//
// ID space: original formula clauses are implicitly numbered 1..n in file
// order; every addition step introduces a strictly larger ID. The recorder
// woven into the verifiers (drat.VerifyBackwardOpts, core.Verify) emits
// engine clause ID + 1, which satisfies this by construction.
//
// Hint-order invariant: for an addition of clause C with hints h1..hk, after
// assigning every literal of C false, each hi in order must be *unit* under
// the accumulated assignment (all literals false except one unassigned,
// which is then assigned true) — except hk, which must be fully falsified.
// Check enforces exactly this; see the package's checker for why acceptance
// implies C is derivable by reverse unit propagation.
package lrat

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// Step is one LRAT proof line: an addition (clause + hints) or a deletion
// (a list of clause IDs that stop being antecedent candidates).
type Step struct {
	// ID identifies the derived clause (additions) or echoes the current
	// ID counter (deletions, matching the standard text format).
	ID int64
	// Del marks a deletion line; Deleted holds the removed IDs.
	Del     bool
	Deleted []int64
	// C is the derived clause; empty means the refutation step.
	C cnf.Clause
	// Hints are the ordered antecedent IDs. Negative values are RAT hints
	// from the full LRAT format; the parsers accept them so foreign proofs
	// round-trip, but Check rejects them (this checker is RUP-only).
	Hints []int64
}

// Proof is a parsed or recorded LRAT proof.
type Proof struct {
	Steps []Step
}

// Additions counts addition steps.
func (p *Proof) Additions() int {
	n := 0
	for i := range p.Steps {
		if !p.Steps[i].Del {
			n++
		}
	}
	return n
}

// Deletions counts deletion steps.
func (p *Proof) Deletions() int { return len(p.Steps) - p.Additions() }

// Limits bounds what the readers accept. Zero fields fall back to the
// corresponding DefaultLimits value.
type Limits struct {
	// MaxSteps bounds the number of proof lines.
	MaxSteps int
	// MaxClauseLen bounds the literals in a single derived clause.
	MaxClauseLen int
	// MaxHints bounds the hints (or deleted IDs) on a single line.
	MaxHints int
	// MaxVar bounds the DIMACS variable magnitude.
	MaxVar int
	// MaxID bounds clause ID magnitude (keeps downstream indexing sane).
	MaxID int64
	// MaxBytes bounds how many input bytes the reader consumes.
	MaxBytes int64
}

// DefaultLimits mirror proof.DefaultLimits: generous for real proofs,
// closed to inputs that could only be hostile or corrupt.
func DefaultLimits() Limits {
	return Limits{
		MaxSteps:     64 << 20, // 67M proof lines
		MaxClauseLen: 1 << 22,  // 4M literals in one clause
		MaxHints:     1 << 24,  // 16M hints on one line
		MaxVar:       1 << 27,  // 134M variables
		MaxID:        1 << 40,  // ~1.1e12 clause IDs
		MaxBytes:     8 << 30,  // 8 GiB of input
	}
}

func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxSteps == 0 {
		l.MaxSteps = d.MaxSteps
	}
	if l.MaxClauseLen == 0 {
		l.MaxClauseLen = d.MaxClauseLen
	}
	if l.MaxHints == 0 {
		l.MaxHints = d.MaxHints
	}
	if l.MaxVar == 0 {
		l.MaxVar = d.MaxVar
	}
	if l.MaxID == 0 {
		l.MaxID = d.MaxID
	}
	if l.MaxBytes == 0 {
		l.MaxBytes = d.MaxBytes
	}
	return l
}

// ErrLimit is the errors.Is target of every *LimitError.
var ErrLimit = errors.New("lrat: input exceeds limit")

// ErrMalformed is the errors.Is target of every syntax/truncation error from
// the readers, so callers can map "bad input" to a distinct outcome.
var ErrMalformed = errors.New("lrat: malformed proof")

// LimitError reports which bound an input blew through.
type LimitError struct {
	What  string // "steps" | "clause length" | "hints" | "variable" | "id" | "bytes"
	Limit int64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("lrat: input exceeds %s limit %d", e.What, e.Limit)
}

func (e *LimitError) Unwrap() error { return ErrLimit }

// cappedReader hard-errors (rather than io.LimitReader's silent EOF, which
// would make an oversized proof look like a well-formed prefix) once more
// than limit bytes have been consumed.
type cappedReader struct {
	r     io.Reader
	left  int64
	limit int64
}

func newCappedReader(r io.Reader, limit int64) *cappedReader {
	return &cappedReader{r: r, left: limit, limit: limit}
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.left == 0 {
		// Exactly at the limit: an input that ends here is legal, one with
		// more bytes is not — probe a single byte to tell them apart.
		var b [1]byte
		n, err := c.r.Read(b[:])
		if n > 0 {
			c.left = -1
			return 0, &LimitError{What: "bytes", Limit: c.limit}
		}
		return 0, err
	}
	if c.left < 0 {
		return 0, &LimitError{What: "bytes", Limit: c.limit}
	}
	if int64(len(p)) > c.left {
		p = p[:c.left]
	}
	n, err := c.r.Read(p)
	c.left -= int64(n)
	return n, err
}

func (c *cappedReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, err
	}
	return b[0], nil
}
