package lrat

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cnf"
)

// chainFormula is (x1)(¬x1 x2)(¬x2): a three-clause unit chain whose LRAT
// refutation "4 0 1 2 3 0" exercises unit replay and the final conflict.
func chainFormula() *cnf.Formula {
	f := cnf.NewFormula(0)
	f.Add(1).Add(-1, 2).Add(-2)
	return f
}

func parse(t *testing.T, in string) *Proof {
	t.Helper()
	p, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckAccepts(t *testing.T) {
	cases := []struct {
		name, proof string
	}{
		{"direct refutation", "4 0 1 2 3 0"},
		{"two-step", "4 2 0 1 2 0\n5 0 4 3 0"},
		{"with deletion", "4 2 0 1 2 0\n5 d 2 0\n5 0 4 3 0"},
		{"tautological step", "4 1 -1 0 0\n5 0 1 2 3 0"},
	}
	for _, tc := range cases {
		res, err := Check(chainFormula(), parse(t, tc.proof), Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !res.OK {
			t.Errorf("%s: rejected at step %d: %s", tc.name, res.FailedStep, res.Reason)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	cases := []struct {
		name, proof, wantReason string
		wantStep                int
	}{
		{"reordered units", "4 0 2 1 3 0", "not unit", 0},
		{"dropped hint", "4 0 1 3 0", "final hint unit", 0},
		{"no hints", "4 0 0", "no hints", 0},
		{"dangling hint", "4 0 1 2 9 0", "dangling hint id 9", 0},
		{"rat hint", "4 0 -1 2 3 0", "RAT hint", 0},
		{"non-increasing id", "3 2 0 1 2 0", "not above previous", 0},
		{"deleted antecedent", "4 d 3 0\n5 0 1 2 3 0", "already deleted", 1},
		{"delete unknown", "4 d 9 0", "unknown id 9", 0},
		{"double delete", "4 d 3 3 0", "double deletion", 0},
		// A hint naming a later step's id is unresolvable at resolution time,
		// so it reports as dangling rather than "not yet derived".
		{"hint from the future", "4 0 1 2 5 0\n5 2 0 1 2 0", "dangling hint id 5", 0},
		// Deriving (x1 x2) assigns x1 false, satisfying (¬x1 x2)'s first literal.
		{"satisfied hint", "4 1 2 0 2 0", "satisfied", 0},
		{"early conflict", "4 0 1 2 3 2 0", "conflicts before the final hint", 0},
		{"no refutation", "4 2 0 1 2 0", "no empty clause derived", -1},
	}
	for _, tc := range cases {
		res, err := Check(chainFormula(), parse(t, tc.proof), Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.OK {
			t.Errorf("%s: accepted, want rejection", tc.name)
			continue
		}
		if res.FailedStep != tc.wantStep {
			t.Errorf("%s: failed step %d, want %d", tc.name, res.FailedStep, tc.wantStep)
		}
		if !strings.Contains(res.Reason, tc.wantReason) {
			t.Errorf("%s: reason %q, want substring %q", tc.name, res.Reason, tc.wantReason)
		}
	}
}

func TestCheckCounters(t *testing.T) {
	res, err := Check(chainFormula(), parse(t, "4 2 0 1 2 0\n5 d 2 0\n6 0 4 3 0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Additions != 2 || res.Deletions != 1 {
		t.Errorf("additions %d deletions %d", res.Additions, res.Deletions)
	}
	if res.HintsScanned != 4 {
		t.Errorf("hints scanned %d, want 4", res.HintsScanned)
	}
	if !res.Refuted {
		t.Error("refuted not set")
	}
}

// longChain builds (x1)(¬x1 x2)...(¬x_{n-1} x_n)(¬x_n) and an LRAT proof
// deriving each unit (x_i) in turn before the empty clause, for exercising
// the chunked parallel mode on something longer than one chunk.
func longChain(n int) (*cnf.Formula, *Proof) {
	f := cnf.NewFormula(0)
	f.Add(1)
	for i := 1; i < n; i++ {
		f.Add(-i, i+1)
	}
	f.Add(-n)
	nf := int64(n + 1)
	p := &Proof{}
	// Derive (x_{i+1}) with hints [previous unit, implication i].
	for i := 1; i < n; i++ {
		p.Steps = append(p.Steps, Step{
			ID:    nf + int64(i),
			C:     mkClause(i + 1),
			Hints: []int64{nf + int64(i) - 1, int64(i) + 1},
		})
	}
	// nf+0 does not exist: the first derived unit leans on formula clause 1.
	p.Steps[0].Hints[0] = 1
	// Empty clause: the last derived unit (x_n) plus the formula's (¬x_n),
	// which is clause index n, LRAT id nf.
	p.Steps = append(p.Steps, Step{
		ID:    nf + int64(n),
		Hints: []int64{nf + int64(n) - 1, nf},
	})
	return f, p
}

func TestCheckParallelMatchesSequential(t *testing.T) {
	f, p := longChain(500)
	seq, err := Check(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.OK {
		t.Fatalf("sequential rejected: step %d: %s", seq.FailedStep, seq.Reason)
	}
	par, err := Check(f, p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.OK || par.HintsScanned != seq.HintsScanned {
		t.Fatalf("parallel diverged: %+v vs %+v", par, seq)
	}
}

func TestCheckParallelFirstFailureWins(t *testing.T) {
	f, p := longChain(500)
	// Corrupt two steps; the earlier one must be reported regardless of
	// which worker hits its chunk first.
	p.Steps[100].Hints = []int64{1}
	p.Steps[400].Hints = []int64{1}
	for _, workers := range []int{1, 4} {
		res, err := Check(f, p, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.OK || res.FailedStep != 100 {
			t.Fatalf("workers=%d: failed step %d, want 100", workers, res.FailedStep)
		}
	}
}

func TestCheckContextCancelled(t *testing.T) {
	f, p := longChain(5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Check(f, p, Options{Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if !res.Incomplete {
		t.Fatal("Incomplete not set")
	}
}

func TestCheckEmptyFormulaClauseRejectsNothing(t *testing.T) {
	// A formula containing the empty clause: any addition hinting at it
	// conflicts immediately.
	f := cnf.NewFormula(0)
	f.AddClause(cnf.Clause{})
	res, err := Check(f, parse(t, "2 0 1 0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rejected: %s", res.Reason)
	}
}

func TestCheckGrowsVarsPastHeader(t *testing.T) {
	// Header claims 0 vars; clauses mention up to x3. The replay arrays must
	// size off the clauses, not the header.
	f := &cnf.Formula{NumVars: 0}
	f.Clauses = []cnf.Clause{mkClause(1), mkClause(-1, 2), mkClause(-2)}
	res, err := Check(f, parse(t, "4 0 1 2 3 0"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("rejected: %s", res.Reason)
	}
}

func BenchmarkCheckChain(b *testing.B) {
	f, p := longChain(2000)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Check(f, p, Options{Workers: workers})
				if err != nil || !res.OK {
					b.Fatal(res.Reason, err)
				}
			}
		})
	}
}
