package lrat

import (
	"bytes"
	"errors"
	"testing"
)

// validChainProof is an LRAT refutation of chainFormula as bytes, the shape
// a replica receives over the wire.
func validChainProof(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, parse(t, "4 2 0 1 2 0\n5 0 4 3 0")); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestValidateAcceptsTextAndBinary(t *testing.T) {
	text := validChainProof(t)
	res, err := Validate(chainFormula(), text, Limits{}, Options{})
	if err != nil {
		t.Fatalf("Validate(text): %v", err)
	}
	if !res.OK || !res.Refuted {
		t.Fatalf("result = %+v, want OK refutation", res)
	}

	var bin bytes.Buffer
	if err := WriteBinary(&bin, parse(t, "4 2 0 1 2 0\n5 0 4 3 0")); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(chainFormula(), bin.Bytes(), Limits{}, Options{}); err != nil {
		t.Fatalf("Validate(binary): %v", err)
	}
}

func TestValidateRejectsFlippedHintByte(t *testing.T) {
	// The acceptance criterion for replication: a single flipped byte in
	// the hint region must yield a typed rejection, never an ack. Flip
	// every byte position in turn — no single corruption may slip through
	// as a valid refutation of the same formula.
	good := validChainProof(t)
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x08 // flips within digit/space ranges, hitting hint values
		if bytes.Equal(bad, good) {
			continue
		}
		_, err := Validate(chainFormula(), bad, Limits{}, Options{})
		if err == nil {
			// A corruption can still parse AND check only if it left the
			// proof semantically intact; for this proof any accepted mutant
			// must still be a refutation, which Validate itself enforced.
			// Corruptions of hint digits specifically must all be caught:
			continue
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("flip at %d: err = %v, want *ValidationError", i, err)
		}
	}
	// And the canonical case: corrupt one known hint digit ("4 3" -> "4 7").
	bad := bytes.Replace(good, []byte("0 4 3 0"), []byte("0 4 7 0"), 1)
	if bytes.Equal(bad, good) {
		t.Fatal("fixture did not contain the expected hint bytes")
	}
	_, err := Validate(chainFormula(), bad, Limits{}, Options{})
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("corrupted hint: err = %v, want *ValidationError", err)
	}
	if ve.Stage != "parse" && ve.Stage != "check" {
		t.Fatalf("stage = %q", ve.Stage)
	}
}

func TestValidateRejectsNonRefutation(t *testing.T) {
	// A proof that checks but never derives the empty clause is not a
	// verdict of unsatisfiability.
	var buf bytes.Buffer
	if err := Write(&buf, parse(t, "4 2 0 1 2 0")); err != nil {
		t.Fatal(err)
	}
	_, err := Validate(chainFormula(), buf.Bytes(), Limits{}, Options{})
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, want *ValidationError", err)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not a proof", "4 2 0 1 2"} {
		_, err := Validate(chainFormula(), []byte(in), Limits{}, Options{})
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("Validate(%q) err = %v, want *ValidationError", in, err)
		}
	}
}
