package lrat

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cnf"
	"repro/internal/obs"
	"repro/internal/sched"
)

// The hint-driven checker. Where RUP verification falsifies a clause and
// *searches* for a conflict with watch lists and a trail, the hinted check
// only replays the named antecedents: under the negated clause, each hint in
// order must be unit (its one unassigned literal is then assigned) and the
// final hint falsified. No watch lists, no trail search, no propagation
// queue — each step touches exactly the clauses its hints name.
//
// Trust argument: if the replay succeeds, the assignment ¬C extended by the
// forced unit literals falsifies the last hint clause, i.e. unit propagation
// restricted to the hint clauses alone derives a conflict from ¬C. Unit
// propagation over MORE clauses derives at least as much, so C is a reverse-
// unit-propagation consequence of the live clause set — acceptance by this
// checker implies acceptance by the RUP checker. The converse does not hold
// (a wrong, reordered, dropped or dangling hint makes the replay fail even
// though the clause may still be RUP-derivable); the checker is deliberately
// strict, and the recorder's trail-ordered emission satisfies it by
// construction.
//
// Because a step's replay depends only on the immutable id→clause table and
// its own hint list, steps verify independently: the parallel mode chunks
// the proof across workers after one cheap sequential structural pass (id
// resolution + liveness intervals), with no shared propagation state at all.

// Options configures Check.
type Options struct {
	// Workers > 1 enables the parallel mode.
	Workers int
	// Strategy selects how parallel work is dispatched: StrategyChunk (the
	// zero value) slices the proof into fixed contiguous per-worker chunks;
	// StrategyDAG schedules steps work-stealing style over the hint
	// dependency DAG (see dag.go), so wall-clock tracks the proof's
	// critical path instead of the slowest chunk. Verdicts are identical
	// either way. Ignored when Workers <= 1.
	Strategy sched.Strategy
	// Ctx, when non-nil, cancels the run; Check then returns ctx.Err()
	// alongside a partial Result with Incomplete set.
	Ctx context.Context
	// Obs, when non-nil, receives counters ("lrat.steps_checked",
	// "lrat.hints_scanned"), a "lrat-check" span and — in DAG mode — the
	// scheduler's sched.* counters and per-worker trace lanes.
	Obs *obs.Registry
}

// Result reports the outcome of a hinted check.
type Result struct {
	// OK means every step replayed and an empty clause was derived.
	OK bool
	// FailedStep is the index into Proof.Steps of the first failing step,
	// or -1 (structural problems before any replay also land here when they
	// are attributable to a step).
	FailedStep int
	// Reason is a human-readable rejection cause when !OK.
	Reason string
	// Additions and Deletions count the proof's steps by kind.
	Additions, Deletions int
	// HintsScanned is the total number of hint clauses replayed.
	HintsScanned int64
	// Refuted reports whether an empty clause was derived.
	Refuted bool
	// Incomplete is true when the run stopped (context) before a verdict;
	// StoppedAt is the step index it reached.
	Incomplete bool
	StoppedAt  int
}

// slotRef locates one clause in the checker's dense table.
type slotRef struct {
	addAt int32 // step index that added it; -1 for formula clauses
	delAt int32 // step index that deleted it; math.MaxInt32 while live
}

// checker is the immutable state shared by all workers after the structural
// pass.
type checker struct {
	clauses [][]cnf.Lit // dense slot -> literals
	refs    []slotRef
	// hintSlots is the flat arena of resolved hint slot indices; step k's
	// hints live at hintSlots[hintOff[k]:hintOff[k+1]] (deletions: empty).
	hintSlots []int32
	hintOff   []int32
	nVars     int
}

const ctxPollEvery = 1024

// Check validates the proof against the formula. Structural problems
// (dangling or non-increasing IDs, deleted antecedents) and failed replays
// both reject via Result; the error return is reserved for cancellation.
func Check(f *cnf.Formula, p *Proof, opt Options) (*Result, error) {
	ctx := opt.Ctx
	span := opt.Obs.StartSpan("lrat-check")
	defer span.End()

	res := &Result{FailedStep: -1}
	for i := range p.Steps {
		if p.Steps[i].Del {
			res.Deletions++
		} else {
			res.Additions++
		}
	}

	ck, rej := buildChecker(f, p)
	if rej != nil {
		res.FailedStep = rej.step
		res.Reason = rej.reason
		return res, nil
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(p.Steps) {
		workers = len(p.Steps)
	}
	if workers > 1 && opt.Strategy == sched.StrategyDAG {
		return checkDAG(p, ck, workers, opt, res)
	}
	cSteps := opt.Obs.Counter("lrat.steps_checked")
	cHints := opt.Obs.Counter("lrat.hints_scanned")

	var (
		failStep   int64 = math.MaxInt64 // atomic min over failing step indices
		reasonMu   sync.Mutex
		reasons    = map[int]string{}
		hintsTotal int64
		refuted    atomic.Bool
		stoppedAt  int64 = -1 // >= 0: context fired; lowest step index seen
	)
	runRange := func(lo, hi int) {
		st := newStepChecker(ck)
		scanned := int64(0)
		for k := lo; k < hi; k++ {
			if int64(k) > atomic.LoadInt64(&failStep) {
				break // a strictly earlier failure already decides the verdict
			}
			if ctx != nil && k%ctxPollEvery == 0 && ctx.Err() != nil {
				for {
					cur := atomic.LoadInt64(&stoppedAt)
					if cur >= 0 && cur <= int64(k) {
						break
					}
					if atomic.CompareAndSwapInt64(&stoppedAt, cur, int64(k)) {
						break
					}
				}
				break
			}
			s := &p.Steps[k]
			if s.Del {
				continue
			}
			n, why := st.check(s, ck.hintSlots[ck.hintOff[k]:ck.hintOff[k+1]])
			scanned += n
			if why != "" {
				for {
					cur := atomic.LoadInt64(&failStep)
					if int64(k) >= cur {
						break
					}
					if atomic.CompareAndSwapInt64(&failStep, cur, int64(k)) {
						reasonMu.Lock()
						reasons[k] = why
						reasonMu.Unlock()
						break
					}
				}
				break
			}
			if len(s.C) == 0 {
				refuted.Store(true)
			}
		}
		atomic.AddInt64(&hintsTotal, scanned)
	}

	if workers <= 1 {
		runRange(0, len(p.Steps))
	} else {
		chunk := (len(p.Steps) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(p.Steps) {
				hi = len(p.Steps)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				runRange(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	res.HintsScanned = hintsTotal
	cHints.Add(hintsTotal)
	cSteps.Add(int64(res.Additions))
	if sa := atomic.LoadInt64(&stoppedAt); sa >= 0 && ctx != nil && ctx.Err() != nil {
		res.Incomplete = true
		res.StoppedAt = int(sa)
		return res, ctx.Err()
	}
	if fs := atomic.LoadInt64(&failStep); fs != math.MaxInt64 {
		res.FailedStep = int(fs)
		reasonMu.Lock()
		res.Reason = reasons[int(fs)]
		reasonMu.Unlock()
		return res, nil
	}
	res.Refuted = refuted.Load()
	if !res.Refuted {
		res.Reason = "no empty clause derived"
		return res, nil
	}
	res.OK = true
	return res, nil
}

// rejection attributes a structural problem to a step.
type rejection struct {
	step   int
	reason string
}

// buildChecker runs the sequential structural pass: id→slot resolution,
// liveness intervals, per-step hint resolution into a flat arena. It does no
// replay work, so it is cheap relative to the per-step checks it unlocks.
func buildChecker(f *cnf.Formula, p *Proof) (*checker, *rejection) {
	nf := f.NumClauses()
	ck := &checker{
		clauses: make([][]cnf.Lit, nf, nf+p.Additions()),
		refs:    make([]slotRef, nf, nf+p.Additions()),
		hintOff: make([]int32, 1, len(p.Steps)+1),
		nVars:   f.NumVars,
	}
	for i, c := range f.Clauses {
		ck.clauses[i] = c
		ck.refs[i] = slotRef{addAt: -1, delAt: math.MaxInt32}
		// Defend the replay arrays against a formula whose header undercounts
		// its variables; the BCP engines grow the same way.
		if mv := c.MaxVar(); int(mv) >= ck.nVars {
			ck.nVars = int(mv) + 1
		}
	}
	// Formula clauses are implicitly 1..nf; additions are dense enough in
	// practice (engine ID + 1) that a sorted lookup is wasted work — but
	// foreign proofs may skip IDs, so additions resolve through a map built
	// exactly once here.
	idSlot := make(map[int64]int32, p.Additions())
	resolve := func(id int64) (int32, bool) {
		if id >= 1 && id <= int64(nf) {
			return int32(id - 1), true
		}
		s, ok := idSlot[id]
		return s, ok
	}
	lastID := int64(nf)
	for k := range p.Steps {
		s := &p.Steps[k]
		if s.Del {
			for _, id := range s.Deleted {
				slot, ok := resolve(id)
				if !ok {
					return nil, &rejection{k, fmt.Sprintf("deletion of unknown id %d", id)}
				}
				if ck.refs[slot].delAt != math.MaxInt32 {
					return nil, &rejection{k, fmt.Sprintf("double deletion of id %d", id)}
				}
				ck.refs[slot].delAt = int32(k)
			}
			ck.hintOff = append(ck.hintOff, int32(len(ck.hintSlots)))
			continue
		}
		if s.ID <= lastID {
			return nil, &rejection{k, fmt.Sprintf("id %d not above previous id %d", s.ID, lastID)}
		}
		lastID = s.ID
		for _, h := range s.Hints {
			if h < 0 {
				return nil, &rejection{k, fmt.Sprintf("RAT hint %d unsupported", h)}
			}
			slot, ok := resolve(h)
			if !ok {
				return nil, &rejection{k, fmt.Sprintf("dangling hint id %d", h)}
			}
			r := ck.refs[slot]
			if r.addAt >= int32(k) {
				return nil, &rejection{k, fmt.Sprintf("hint id %d not yet derived", h)}
			}
			if r.delAt <= int32(k) {
				return nil, &rejection{k, fmt.Sprintf("hint id %d already deleted", h)}
			}
			ck.hintSlots = append(ck.hintSlots, slot)
		}
		slot := int32(len(ck.clauses))
		ck.clauses = append(ck.clauses, s.C)
		ck.refs = append(ck.refs, slotRef{addAt: int32(k), delAt: math.MaxInt32})
		idSlot[s.ID] = slot
		ck.hintOff = append(ck.hintOff, int32(len(ck.hintSlots)))
		if mv := s.C.MaxVar(); int(mv) >= ck.nVars {
			ck.nVars = int(mv) + 1
		}
	}
	return ck, nil
}

// stepChecker is one worker's mutable replay state: an assignment array and
// its undo list. Values: 0 unassigned, +1 true, -1 false.
type stepChecker struct {
	ck     *checker
	assign []int8
	undo   []cnf.Var
}

func newStepChecker(ck *checker) *stepChecker {
	return &stepChecker{ck: ck, assign: make([]int8, ck.nVars)}
}

func (st *stepChecker) set(l cnf.Lit) {
	v := l.Var()
	if l.IsNeg() {
		st.assign[v] = -1
	} else {
		st.assign[v] = 1
	}
	st.undo = append(st.undo, v)
}

func (st *stepChecker) val(l cnf.Lit) int8 {
	v := st.assign[l.Var()]
	if l.IsNeg() {
		return -v
	}
	return v
}

func (st *stepChecker) reset() {
	for _, v := range st.undo {
		st.assign[v] = 0
	}
	st.undo = st.undo[:0]
}

// check replays one addition step. It returns the number of hint clauses
// scanned and a non-empty reason on failure.
func (st *stepChecker) check(s *Step, hints []int32) (int64, string) {
	defer st.reset()
	// Assume the negation of the derived clause. A complementary pair means
	// the clause is a tautology — trivially implied, no hints needed.
	for _, l := range s.C {
		switch st.val(l) {
		case 1:
			return 0, "" // tautology
		case 0:
			st.set(l.Neg())
		}
	}
	if len(hints) == 0 {
		return 0, "no hints"
	}
	for i, slot := range hints {
		cl := st.ck.clauses[slot]
		var unit cnf.Lit = cnf.LitUndef
		unassigned := 0
		for _, l := range cl {
			switch st.val(l) {
			case 1:
				return int64(i + 1), fmt.Sprintf("hint %d (clause %s) satisfied, not unit", i, fmtClause(cl))
			case 0:
				// A repeated literal is still one candidate unit.
				if l != unit {
					unassigned++
					unit = l
				}
			}
		}
		last := i == len(hints)-1
		switch {
		case unassigned == 0:
			if !last {
				return int64(i + 1), fmt.Sprintf("hint %d conflicts before the final hint", i)
			}
			return int64(len(hints)), "" // falsified final hint: step derived
		case unassigned == 1:
			if last {
				return int64(len(hints)), fmt.Sprintf("final hint unit on %d, not conflicting", unit.Dimacs())
			}
			st.set(unit)
		default:
			return int64(i + 1), fmt.Sprintf("hint %d has %d unassigned literals, not unit", i, unassigned)
		}
	}
	return int64(len(hints)), "unreachable"
}

func fmtClause(ls []cnf.Lit) string {
	ds := make([]int, len(ls))
	for i, l := range ls {
		ds[i] = l.Dimacs()
	}
	sort.Ints(ds)
	return fmt.Sprint(ds)
}
