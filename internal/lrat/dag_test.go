package lrat

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/sched"
)

func TestCheckDAGMatchesChunkAndSequential(t *testing.T) {
	f, p := longChain(800)
	seq, err := Check(f, p, Options{})
	if err != nil || !seq.OK {
		t.Fatalf("sequential: %+v, %v", seq, err)
	}
	for _, workers := range []int{2, 4, 8} {
		chunk, err := Check(f, p, Options{Workers: workers, Strategy: sched.StrategyChunk})
		if err != nil {
			t.Fatal(err)
		}
		dag, err := Check(f, p, Options{Workers: workers, Strategy: sched.StrategyDAG})
		if err != nil {
			t.Fatal(err)
		}
		for name, r := range map[string]*Result{"chunk": chunk, "dag": dag} {
			if !r.OK || !r.Refuted || r.HintsScanned != seq.HintsScanned ||
				r.Additions != seq.Additions || r.Deletions != seq.Deletions {
				t.Fatalf("workers=%d %s diverged: %+v vs %+v", workers, name, r, seq)
			}
		}
	}
}

func TestCheckDAGFirstFailureWins(t *testing.T) {
	f, p := longChain(800)
	p.Steps[120].Hints = []int64{1}
	p.Steps[600].Hints = []int64{1}
	res, err := Check(f, p, Options{Workers: 4, Strategy: sched.StrategyDAG})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK || res.FailedStep != 120 {
		t.Fatalf("failed step %d, want 120 (%s)", res.FailedStep, res.Reason)
	}
}

func TestCheckDAGContextCancelled(t *testing.T) {
	f, p := longChain(5000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Check(f, p, Options{Workers: 4, Strategy: sched.StrategyDAG, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if !res.Incomplete {
		t.Fatal("Incomplete not set")
	}
}

// corruptOne flips one random step's hints into something that cannot
// replay, and returns the step index.
func corruptOne(rng *rand.Rand, p *Proof) int {
	for {
		k := rng.Intn(len(p.Steps))
		if p.Steps[k].Del || len(p.Steps[k].Hints) < 2 {
			continue
		}
		p.Steps[k].Hints = p.Steps[k].Hints[:1]
		return k
	}
}

// Randomized differential: on randomly corrupted chains, DAG and chunk mode
// must agree on the verdict and the failing step exactly.
func TestCheckDAGDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 40; round++ {
		n := 50 + rng.Intn(400)
		f, p := longChain(n)
		want := -1
		if rng.Intn(2) == 1 {
			want = corruptOne(rng, p)
		}
		workers := 2 + rng.Intn(6)
		chunk, err := Check(f, p, Options{Workers: workers, Strategy: sched.StrategyChunk})
		if err != nil {
			t.Fatal(err)
		}
		dag, err := Check(f, p, Options{Workers: workers, Strategy: sched.StrategyDAG})
		if err != nil {
			t.Fatal(err)
		}
		if chunk.OK != dag.OK || chunk.FailedStep != dag.FailedStep || chunk.Reason != dag.Reason {
			t.Fatalf("round %d: chunk %+v vs dag %+v", round, chunk, dag)
		}
		if want >= 0 && (dag.OK || dag.FailedStep != want) {
			t.Fatalf("round %d: corrupted step %d, dag reported %d (ok=%v)",
				round, want, dag.FailedStep, dag.OK)
		}
		if want < 0 && !dag.OK {
			t.Fatalf("round %d: clean proof rejected at %d: %s", round, dag.FailedStep, dag.Reason)
		}
	}
}

// The chain proof's DAG is one long dependency path: each derived unit
// hints the previous derived unit, so depth tracks the additions and the
// deletionless chain admits no parallelism (crit == total over additions).
func TestReplayerDAGShape(t *testing.T) {
	f, p := longChain(100)
	rep, err := NewReplayer(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps() != len(p.Steps) {
		t.Fatalf("steps %d, want %d", rep.Steps(), len(p.Steps))
	}
	st := rep.DAG().Stats()
	if st.Tasks != 100 || st.Depth != 100 || st.MaxWidth != 1 {
		t.Fatalf("chain DAG stats = %+v", st)
	}
	// Each step cites the previous one exactly once (the other hint is a
	// formula clause, which contributes no edge).
	if st.Edges != 99 || st.Roots != 1 {
		t.Fatalf("chain DAG edges/roots = %+v", st)
	}
}

func TestReplayerStructuralRejection(t *testing.T) {
	f, p := longChain(10)
	p.Steps[3].Hints = []int64{999}
	if _, err := NewReplayer(f, p); err == nil {
		t.Fatal("dangling hint did not reject")
	}
}

func TestReplayerStepByStep(t *testing.T) {
	f, p := longChain(50)
	rep, err := NewReplayer(f, p)
	if err != nil {
		t.Fatal(err)
	}
	w := rep.NewWorker()
	// Replay out of order on purpose: step replay only reads the immutable
	// table, so any order must succeed.
	for k := rep.Steps() - 1; k >= 0; k-- {
		if _, why := w.Step(k); why != "" {
			t.Fatalf("step %d: %s", k, why)
		}
	}
}

// BuildDAG (no formula) must agree with the replayer's DAG on shape for a
// well-formed proof, and tolerate dangling hints instead of rejecting.
func TestBuildDAGStandalone(t *testing.T) {
	f, p := longChain(60)
	rep, err := NewReplayer(f, p)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.DAG().Stats(), BuildDAG(p).Stats()
	if a != b {
		t.Fatalf("replayer DAG %+v vs standalone %+v", a, b)
	}
	p.Steps[10].Hints = append(p.Steps[10].Hints, 424242)
	st := BuildDAG(p).Stats()
	if st.Tasks != 60 {
		t.Fatalf("dangling hint broke standalone DAG: %+v", st)
	}
}
