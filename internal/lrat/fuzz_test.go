package lrat

import (
	"bytes"
	"errors"
	"testing"
)

// The fuzz targets pin the LRAT parser hardening contract on arbitrary
// bytes: never panic, never hang, fail only with the typed error classes —
// and when input does parse, survive a write/re-read round trip unchanged.

// fuzzLimits keeps worst-case allocations small enough for the fuzzer to
// drive millions of executions.
var fuzzLimits = Limits{
	MaxSteps:     1 << 12,
	MaxClauseLen: 1 << 10,
	MaxHints:     1 << 12,
	MaxVar:       1 << 16,
	MaxID:        1 << 30,
	MaxBytes:     1 << 20,
}

func FuzzParseLRAT(f *testing.F) {
	f.Add([]byte("4 1 0 1 2 0\n5 0 3 4 0\n"))
	f.Add([]byte("4 d 1 2 0\n"))
	f.Add([]byte("c comment\n4 -1 2 0 -3 1 0\n"))
	f.Add([]byte("4 1 0 1 2\n"))
	f.Add([]byte("99999999999999999999 0 1 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrLimit) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			t.Fatalf("writing parsed proof: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if len(back.Steps) != len(p.Steps) {
			t.Fatalf("round trip changed step count: %d != %d", len(back.Steps), len(p.Steps))
		}
	})
}

func FuzzParseLRATBinary(f *testing.F) {
	// Seed with a well-formed encoding so the fuzzer starts past the
	// magic/version gate, plus raw junk around the header.
	seed := &Proof{Steps: []Step{
		{ID: 4, C: mkClause(1), Hints: []int64{1, 2}},
		{ID: 4, Del: true, Deleted: []int64{1, 2}},
		{ID: 5, Hints: []int64{3, 4}},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, seed); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))
	f.Add([]byte("CLRT"))
	f.Add([]byte("CLRT\x01\x00a\xff\xff\xff\xff"))
	f.Add([]byte("CLRT\x02\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadBinaryLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrLimit) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, p); err != nil {
			t.Fatalf("writing parsed proof: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		if len(back.Steps) != len(p.Steps) {
			t.Fatalf("round trip changed step count: %d != %d", len(back.Steps), len(p.Steps))
		}
	})
}
