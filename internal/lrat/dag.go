package lrat

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cnf"
	"repro/internal/sched"
)

// The hint DAG. Every addition step names its antecedents, so the proof's
// clause-dependency graph is already on disk: an edge runs from the step
// that added a hinted clause to the step citing it (formula clauses have no
// adding step and contribute no edges). Replays only read the immutable
// id→clause table, so the DAG's edges are not needed for correctness of the
// hinted check — any order works — but scheduling along them keeps a
// worker's next task citing clauses it just touched, and it is the shape
// whose critical path bounds parallel wall-clock. Task costs are
// 1 + len(hints): replay cost is linear in the hint list.

// Replayer exposes step-at-a-time hinted replay for external schedulers
// (core's DAG-scheduled verification). It is the structural pass of Check
// (id resolution, liveness intervals, hint arena) frozen into an immutable
// table that any number of ReplayWorkers can share.
type Replayer struct {
	p  *Proof
	ck *checker
	nf int
}

// NewReplayer runs the structural pass over the proof. A structural
// rejection (dangling id, deleted antecedent, non-increasing ids) returns
// an error naming the step; replay failures are reported per step later.
func NewReplayer(f *cnf.Formula, p *Proof) (*Replayer, error) {
	ck, rej := buildChecker(f, p)
	if rej != nil {
		return nil, fmt.Errorf("lrat: structural rejection at step %d: %s", rej.step, rej.reason)
	}
	return &Replayer{p: p, ck: ck, nf: f.NumClauses()}, nil
}

// Steps reports the number of proof steps (= scheduler tasks; deletions are
// no-op tasks so task indices equal step indices).
func (r *Replayer) Steps() int { return len(r.p.Steps) }

// DAG builds the clause-dependency DAG over the proof's steps.
func (r *Replayer) DAG() *sched.DAG {
	b := sched.NewBuilder(len(r.p.Steps))
	for k := range r.p.Steps {
		if r.p.Steps[k].Del {
			continue
		}
		hints := r.ck.hintSlots[r.ck.hintOff[k]:r.ck.hintOff[k+1]]
		b.SetCost(k, int64(1+len(hints)))
		for _, slot := range hints {
			// addAt < k is guaranteed: buildChecker rejects hints that cite
			// a step not yet derived.
			if at := r.ck.refs[slot].addAt; at >= 0 {
				b.AddEdge(int(at), k)
			}
		}
	}
	return b.Build()
}

// NewWorker allocates one worker's private replay scratchpad. Workers are
// not safe for concurrent use; allocate one per goroutine.
func (r *Replayer) NewWorker() *ReplayWorker {
	return &ReplayWorker{r: r, st: newStepChecker(r.ck)}
}

// ReplayWorker replays individual steps against the shared table.
type ReplayWorker struct {
	r  *Replayer
	st *stepChecker
}

// Step replays step k. It returns the number of hint clauses scanned and a
// non-empty reason if the replay failed; deletion steps are no-ops.
func (w *ReplayWorker) Step(k int) (hintsScanned int64, reason string) {
	s := &w.r.p.Steps[k]
	if s.Del {
		return 0, ""
	}
	return w.st.check(s, w.r.ck.hintSlots[w.r.ck.hintOff[k]:w.r.ck.hintOff[k+1]])
}

// BuildDAG constructs the hint DAG of a bare proof without its formula, for
// diagnostics (proofstat): hints that do not name an addition step of the
// proof — formula clauses, or ids a malformed proof dangles — contribute no
// edges, and edges that would not point forward are skipped rather than
// rejected. Use NewReplayer for the checked construction.
func BuildDAG(p *Proof) *sched.DAG {
	b := sched.NewBuilder(len(p.Steps))
	idx := make(map[int64]int, p.Additions())
	for k := range p.Steps {
		s := &p.Steps[k]
		if s.Del {
			continue
		}
		b.SetCost(k, int64(1+len(s.Hints)))
		for _, h := range s.Hints {
			if h <= 0 {
				continue
			}
			if at, ok := idx[h]; ok && at < k {
				b.AddEdge(at, k)
			}
		}
		idx[s.ID] = k
	}
	return b.Build()
}

// checkDAG is Check's DAG-scheduled mode: the same per-step replay as the
// chunked mode, dispatched by the work-stealing scheduler over the hint DAG
// instead of by contiguous index ranges. Verdict semantics are identical —
// the first (lowest-index) failing step decides, a derived empty clause
// sets Refuted, cancellation yields Incomplete with the lowest step index
// that observed it — because every step below the minimum failure is still
// executed and failures take an atomic min.
func checkDAG(p *Proof, ck *checker, workers int, opt Options, res *Result) (*Result, error) {
	ctx := opt.Ctx
	d := (&Replayer{p: p, ck: ck}).DAG()

	var (
		failStep   int64 = math.MaxInt64
		reasonMu   sync.Mutex
		reasons    = map[int]string{}
		hintsTotal int64
		refuted    atomic.Bool
		stoppedAt  int64 = math.MaxInt64
	)
	sts := make([]*stepChecker, workers)
	fn := func(w, k, attempt int) error {
		if ctx != nil && ctx.Err() != nil {
			atomicMin(&stoppedAt, int64(k))
			return ctx.Err()
		}
		if int64(k) > atomic.LoadInt64(&failStep) {
			return nil // a strictly earlier failure already decides the verdict
		}
		s := &p.Steps[k]
		if s.Del {
			return nil
		}
		st := sts[w]
		if st == nil || attempt > 0 {
			st = newStepChecker(ck)
			sts[w] = st
		}
		n, why := st.check(s, ck.hintSlots[ck.hintOff[k]:ck.hintOff[k+1]])
		atomic.AddInt64(&hintsTotal, n)
		if why != "" {
			if atomicMin(&failStep, int64(k)) {
				reasonMu.Lock()
				reasons[k] = why
				reasonMu.Unlock()
			}
			return nil
		}
		if len(s.C) == 0 {
			refuted.Store(true)
		}
		return nil
	}
	_, err := sched.Run(d, sched.Options{
		Workers: workers, Ctx: ctx, Obs: opt.Obs, TrackPrefix: "lrat",
	}, fn)

	res.HintsScanned = hintsTotal
	opt.Obs.Counter("lrat.hints_scanned").Add(hintsTotal)
	opt.Obs.Counter("lrat.steps_checked").Add(int64(res.Additions))
	if err != nil {
		res.Incomplete = true
		if sa := atomic.LoadInt64(&stoppedAt); sa != math.MaxInt64 {
			res.StoppedAt = int(sa)
		}
		return res, err
	}
	if fs := atomic.LoadInt64(&failStep); fs != math.MaxInt64 {
		res.FailedStep = int(fs)
		reasonMu.Lock()
		res.Reason = reasons[int(fs)]
		reasonMu.Unlock()
		return res, nil
	}
	res.Refuted = refuted.Load()
	if !res.Refuted {
		res.Reason = "no empty clause derived"
		return res, nil
	}
	res.OK = true
	return res, nil
}

// atomicMin lowers *p to v and reports whether v became the new minimum.
func atomicMin(p *int64, v int64) bool {
	for {
		cur := atomic.LoadInt64(p)
		if v >= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(p, cur, v) {
			return true
		}
	}
}
