package lrat

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cnf"
)

func mkClause(dimacs ...int) cnf.Clause {
	c := make(cnf.Clause, 0, len(dimacs))
	for _, d := range dimacs {
		c = append(c, cnf.FromDimacs(d))
	}
	return c
}

func sampleProof() *Proof {
	return &Proof{Steps: []Step{
		{ID: 4, C: mkClause(2), Hints: []int64{1, 2}},
		{ID: 5, Del: true, Deleted: []int64{2}},
		{ID: 6, C: nil, Hints: []int64{4, 3}},
	}}
}

func TestTextRoundTrip(t *testing.T) {
	p := sampleProof()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(got)) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p.Steps, got.Steps)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	p := sampleProof()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !DetectBinary(buf.Bytes()) {
		t.Fatal("binary output not detected as binary")
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(got)) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p.Steps, got.Steps)
	}
}

// normalize maps nil and empty slices to a comparable shape.
func normalize(p *Proof) []Step {
	out := make([]Step, len(p.Steps))
	for i, s := range p.Steps {
		if len(s.C) == 0 {
			s.C = nil
		}
		if len(s.Hints) == 0 {
			s.Hints = nil
		}
		if len(s.Deleted) == 0 {
			s.Deleted = nil
		}
		out[i] = s
	}
	return out
}

func TestTextComments(t *testing.T) {
	in := "c a comment line\n4 2 0 1 2 0\nc another\n5 0 4 3 0\n"
	p, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 || p.Steps[0].ID != 4 || p.Steps[1].ID != 5 {
		t.Fatalf("got %+v", p.Steps)
	}
}

func TestTextNegativeHintsAccepted(t *testing.T) {
	// RAT hints are negative; parsers keep them so foreign proofs round-trip.
	p, err := Read(strings.NewReader("4 1 0 -2 3 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Steps[0].Hints, []int64{-2, 3}) {
		t.Fatalf("hints %v", p.Steps[0].Hints)
	}
}

func TestTextMalformed(t *testing.T) {
	for _, in := range []string{
		"x 1 0 1 0\n",  // bad id
		"-4 1 0 1 0\n", // negative id
		"0 1 0 1 0\n",  // zero id
		"4 1 0 1\n",    // unterminated hints
		"4 1\n",        // unterminated clause
		"4\n",          // truncated after id
		"4 d 1\n",      // unterminated deletion
		"4 d -1 0\n",   // negative deleted id
		"4 y 0\n",      // bad literal token
	} {
		if _, err := Read(strings.NewReader(in)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: got %v, want ErrMalformed", in, err)
		}
	}
}

func TestTextLimits(t *testing.T) {
	cases := []struct {
		in   string
		lim  Limits
		what string
	}{
		{"4 1 0 1 0\n5 2 0 1 0\n", Limits{MaxSteps: 1}, "steps"},
		{"4 1 2 3 0 1 0\n", Limits{MaxClauseLen: 2}, "clause length"},
		{"4 1 0 1 2 3 0\n", Limits{MaxHints: 2}, "hints"},
		{"4 99 0 1 0\n", Limits{MaxVar: 10}, "variable"},
		{"400 1 0 1 0\n", Limits{MaxID: 100}, "id"},
		{"4 1 0 900 0\n", Limits{MaxID: 100}, "id"},
		{"4 d 900 0\n", Limits{MaxID: 100}, "id"},
		{"4 1 0 1 0\n5 2 0 1 0\n", Limits{MaxBytes: 12}, "bytes"},
	}
	for _, tc := range cases {
		_, err := ReadLimited(strings.NewReader(tc.in), tc.lim)
		if !errors.Is(err, ErrLimit) {
			t.Errorf("%q lim %+v: got %v, want ErrLimit", tc.in, tc.lim, err)
			continue
		}
		var le *LimitError
		if !errors.As(err, &le) || le.What != tc.what {
			t.Errorf("%q: got %v, want %s limit", tc.in, err, tc.what)
		}
	}
}

func TestBinaryMalformed(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleProof()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"bad magic":    append([]byte("XLRT"), good[4:]...),
		"bad version":  append(append([]byte(nil), good[0:4]...), append([]byte{99}, good[5:]...)...),
		"bad flags":    append(append([]byte(nil), good[0:5]...), append([]byte{1}, good[6:]...)...),
		"truncated":    good[:len(good)-1],
		"bad step tag": append(append([]byte(nil), good...), 'x'),
		"empty":        nil,
	}
	for name, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

func TestBinaryLimits(t *testing.T) {
	big := &Proof{Steps: []Step{
		{ID: 4, C: mkClause(1, 2, 3), Hints: []int64{1}},
		{ID: 5, C: mkClause(1), Hints: []int64{1, 2, 3, 4}},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, big); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		lim  Limits
		what string
	}{
		{Limits{MaxSteps: 1}, "steps"},
		{Limits{MaxClauseLen: 2}, "clause length"},
		{Limits{MaxHints: 2}, "hints"},
		{Limits{MaxVar: 2}, "variable"},
		{Limits{MaxID: 4}, "id"},
		{Limits{MaxBytes: 8}, "bytes"},
	} {
		_, err := ReadBinaryLimited(bytes.NewReader(buf.Bytes()), tc.lim)
		var le *LimitError
		if !errors.Is(err, ErrLimit) || !errors.As(err, &le) || le.What != tc.what {
			t.Errorf("lim %+v: got %v, want %s limit", tc.lim, err, tc.what)
		}
	}
}

func TestDetectBinary(t *testing.T) {
	if DetectBinary([]byte("4 2 0 1 2 0\n")) {
		t.Error("text misdetected as binary")
	}
	if DetectBinary([]byte("CLR")) {
		t.Error("short prefix misdetected")
	}
}

func TestRecorderSortsAndRoundTrips(t *testing.T) {
	var r Recorder
	// Backward checkers record in descending ID order.
	r.Record(6, nil, []int64{4, 3})
	r.Record(4, mkClause(2), []int64{1, 2})
	if r.Len() != 2 {
		t.Fatalf("Len %d", r.Len())
	}
	p, err := r.Proof()
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].ID != 4 || p.Steps[1].ID != 6 {
		t.Fatalf("not sorted: %+v", p.Steps)
	}

	restored, err := DecodeRecorder(r.Encode())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := restored.Proof()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(p2)) {
		t.Fatalf("recorder round trip mismatch:\n%+v\n%+v", p.Steps, p2.Steps)
	}
}

func TestRecorderDuplicateID(t *testing.T) {
	var r Recorder
	r.Record(4, mkClause(1), []int64{1})
	r.Record(4, mkClause(2), []int64{2})
	if _, err := r.Proof(); err == nil {
		t.Fatal("duplicate id not reported")
	}
}

func TestRecorderIsolatesCallerBuffers(t *testing.T) {
	var r Recorder
	c := mkClause(1, 2)
	h := []int64{1, 2}
	r.Record(4, c, h)
	c[0] = cnf.FromDimacs(9)
	h[0] = 99
	p, err := r.Proof()
	if err != nil {
		t.Fatal(err)
	}
	if p.Steps[0].C[0] != cnf.FromDimacs(1) || p.Steps[0].Hints[0] != 1 {
		t.Fatal("recorder aliased caller buffers")
	}
}
