package lrat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cnf"
)

// Text LRAT format, one step per line (the parser tolerates line breaks
// anywhere, like the DIMACS readers):
//
//	<id> <lits...> 0 <hints...> 0      addition
//	<id> d <ids...> 0                  deletion
//
// Lines starting with 'c' are comments and skipped.

// Write streams the proof in the text format.
func Write(w io.Writer, p *Proof) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for i := range p.Steps {
		s := &p.Steps[i]
		buf = strconv.AppendInt(buf[:0], s.ID, 10)
		if s.Del {
			buf = append(buf, " d"...)
			for _, id := range s.Deleted {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, id, 10)
			}
		} else {
			for _, l := range s.C {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(l.Dimacs()), 10)
			}
			buf = append(buf, " 0"...)
			for _, h := range s.Hints {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, h, 10)
			}
		}
		buf = append(buf, " 0\n"...)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a text proof under DefaultLimits.
func Read(r io.Reader) (*Proof, error) { return ReadLimited(r, DefaultLimits()) }

// ReadLimited is Read with explicit Limits — the entry point for genuinely
// untrusted input. Syntax problems (including truncation) wrap ErrMalformed
// and limit violations wrap ErrLimit.
func ReadLimited(r io.Reader, lim Limits) (*Proof, error) {
	lim = lim.withDefaults()
	sc := bufio.NewScanner(newCappedReader(r, lim.MaxBytes))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	sc.Split(scanTokenSkipComments)

	p := &Proof{}
	next := func() (string, bool, error) {
		if sc.Scan() {
			return sc.Text(), true, nil
		}
		if err := sc.Err(); err != nil {
			// A byte-budget violation surfaces typed through the scanner;
			// anything else (oversized token, IO garbage) is malformed input.
			return "", false, limitOr(err, fmt.Errorf("%w: %v", ErrMalformed, err))
		}
		return "", false, nil
	}
	for {
		tok, ok, err := next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return p, nil
		}
		if len(p.Steps) >= lim.MaxSteps {
			return nil, &LimitError{What: "steps", Limit: int64(lim.MaxSteps)}
		}
		id, err := strconv.ParseInt(tok, 10, 64)
		if err != nil || id <= 0 {
			return nil, fmt.Errorf("%w: step %d: bad id %q", ErrMalformed, len(p.Steps), tok)
		}
		if id > lim.MaxID {
			return nil, &LimitError{What: "id", Limit: lim.MaxID}
		}
		s := Step{ID: id}

		tok, ok, err = next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: step %d: truncated after id", ErrMalformed, len(p.Steps))
		}
		if tok == "d" {
			s.Del = true
			for {
				tok, ok, err = next()
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("%w: step %d: unterminated deletion", ErrMalformed, len(p.Steps))
				}
				d, err := strconv.ParseInt(tok, 10, 64)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("%w: step %d: bad deleted id %q", ErrMalformed, len(p.Steps), tok)
				}
				if d == 0 {
					break
				}
				if d > lim.MaxID {
					return nil, &LimitError{What: "id", Limit: lim.MaxID}
				}
				if len(s.Deleted) >= lim.MaxHints {
					return nil, &LimitError{What: "hints", Limit: int64(lim.MaxHints)}
				}
				s.Deleted = append(s.Deleted, d)
			}
			p.Steps = append(p.Steps, s)
			continue
		}

		// Addition: literals until 0, then hints until 0. The current token
		// is the first literal (or the clause terminator).
		for {
			d, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("%w: step %d: bad literal %q", ErrMalformed, len(p.Steps), tok)
			}
			if d == 0 {
				break
			}
			if d > lim.MaxVar || -d > lim.MaxVar {
				return nil, &LimitError{What: "variable", Limit: int64(lim.MaxVar)}
			}
			if len(s.C) >= lim.MaxClauseLen {
				return nil, &LimitError{What: "clause length", Limit: int64(lim.MaxClauseLen)}
			}
			s.C = append(s.C, cnf.FromDimacs(d))
			tok, ok, err = next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%w: step %d: unterminated clause", ErrMalformed, len(p.Steps))
			}
		}
		for {
			tok, ok, err = next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("%w: step %d: unterminated hints", ErrMalformed, len(p.Steps))
			}
			h, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: step %d: bad hint %q", ErrMalformed, len(p.Steps), tok)
			}
			if h == 0 {
				break
			}
			if h > lim.MaxID || -h > lim.MaxID {
				return nil, &LimitError{What: "id", Limit: lim.MaxID}
			}
			if len(s.Hints) >= lim.MaxHints {
				return nil, &LimitError{What: "hints", Limit: int64(lim.MaxHints)}
			}
			s.Hints = append(s.Hints, h)
		}
		p.Steps = append(p.Steps, s)
	}
}

// scanTokenSkipComments is a bufio.SplitFunc yielding whitespace-separated
// tokens while dropping comments ('c' through end of line). No valid LRAT
// token starts with 'c', so the check needs no line-start tracking — which
// a stateless split function could not do across chunk boundaries anyway.
func scanTokenSkipComments(data []byte, atEOF bool) (advance int, token []byte, err error) {
	i := 0
	for {
		for i < len(data) && isSpace(data[i]) {
			i++
		}
		if i >= len(data) {
			if atEOF {
				return len(data), nil, nil
			}
			return i, nil, nil // need more data
		}
		if data[i] == 'c' {
			// Comment: consume through end of line.
			j := i
			for j < len(data) && data[j] != '\n' {
				j++
			}
			if j >= len(data) && !atEOF {
				return i, nil, nil // need more data to find the newline
			}
			i = j
			continue
		}
		// Token: up to the next whitespace.
		j := i
		for j < len(data) && !isSpace(data[j]) {
			j++
		}
		if j >= len(data) && !atEOF {
			return i, nil, nil
		}
		return j, data[i:j], nil
	}
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }
