package lrat

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/cnf"
)

// Recorder accumulates hinted steps as a verifier derives them. The backward
// checkers visit proof clauses in reverse chronological order, so steps
// arrive in descending ID order and Proof() sorts them; IDs are unique by
// construction (one per verified clause), which makes the sort — and the
// emitted bytes — deterministic.
//
// A Recorder rides inside checkpoints (Encode/DecodeRecorder) so an
// interrupted-then-resumed run emits byte-identical LRAT: the checkpoint
// carries exactly the steps recorded up to the boundary, and the resumed run
// re-records everything after it from the same canonical engine state.
type Recorder struct {
	steps []Step
}

// Record appends one addition step. The clause and hints are copied.
func (r *Recorder) Record(id int64, c cnf.Clause, hints []int64) {
	r.steps = append(r.steps, Step{
		ID:    id,
		C:     append(cnf.Clause(nil), c...),
		Hints: append([]int64(nil), hints...),
	})
}

// Len reports how many steps have been recorded.
func (r *Recorder) Len() int { return len(r.steps) }

// Proof returns the recorded steps sorted by ID as an emission-ready proof.
// Duplicate IDs mean the recorder was driven twice for the same clause — a
// caller bug, reported rather than silently emitted.
func (r *Recorder) Proof() (*Proof, error) {
	steps := append([]Step(nil), r.steps...)
	sort.Slice(steps, func(i, j int) bool { return steps[i].ID < steps[j].ID })
	for i := 1; i < len(steps); i++ {
		if steps[i].ID == steps[i-1].ID {
			return nil, fmt.Errorf("lrat: duplicate recorded id %d", steps[i].ID)
		}
	}
	return &Proof{Steps: steps}, nil
}

// Encode serializes the recorder (in record order) using the binary proof
// format, for embedding in a checkpoint payload.
func (r *Recorder) Encode() []byte {
	var buf bytes.Buffer
	// The binary writer only fails on the underlying writer, which for a
	// bytes.Buffer cannot happen.
	_ = WriteBinary(&buf, &Proof{Steps: r.steps})
	return buf.Bytes()
}

// DecodeRecorder restores a recorder from Encode's output. Checkpoint
// payloads are CRC-framed by the journal, so limits stay at their defaults.
func DecodeRecorder(b []byte) (*Recorder, error) {
	p, err := ReadBinary(bytes.NewReader(b))
	if err != nil {
		return nil, err
	}
	return &Recorder{steps: p.Steps}, nil
}
