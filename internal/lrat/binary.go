package lrat

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// Binary LRAT format — the compact counterpart of the text format, following
// the binary trace idiom (magic + version + flags header, uvarint payloads
// with a 0 terminator that no mapped value can collide with).
//
// Layout:
//
//	magic "CLRT" | version byte (1) | flags byte (0)
//	addition: 'a' uvarint id | mapped literals..., 0 | mapped hints..., 0
//	deletion: 'd' uvarint id | uvarint deleted ids..., 0
//
// A literal with DIMACS value v maps to (|v| << 1) | (v < 0); a hint h maps
// to (|h| << 1) | (h < 0). Both are always >= 2, and deleted IDs are >= 1,
// so the 0 terminators are unambiguous.

const binaryMagic = "CLRT"

const binaryVersion = 1

// DetectBinary reports whether the buffer's first bytes look like the
// binary format; text proofs start with a digit or comment, never 'C'.
func DetectBinary(prefix []byte) bool {
	return len(prefix) >= len(binaryMagic) && string(prefix[:len(binaryMagic)]) == binaryMagic
}

func mapLit(l cnf.Lit) uint64 {
	d := l.Dimacs()
	if d < 0 {
		return uint64(-d)<<1 | 1
	}
	return uint64(d) << 1
}

func mapHint(h int64) uint64 {
	if h < 0 {
		return uint64(-h)<<1 | 1
	}
	return uint64(h) << 1
}

// unmapLit decodes a mapped literal, refusing magnitudes beyond maxVar on
// the uint64 before narrowing — a 2^40 "variable" must not wrap the int32
// literal encoding.
func unmapLit(u uint64, maxVar int) (cnf.Lit, error) {
	mag := u >> 1
	if mag == 0 {
		return cnf.LitUndef, fmt.Errorf("%w: binary literal 0 outside terminator position", ErrMalformed)
	}
	if mag > uint64(maxVar) {
		return cnf.LitUndef, &LimitError{What: "variable", Limit: int64(maxVar)}
	}
	if u&1 == 1 {
		return cnf.FromDimacs(-int(mag)), nil
	}
	return cnf.FromDimacs(int(mag)), nil
}

func unmapHint(u uint64, maxID int64) (int64, error) {
	mag := u >> 1
	if mag == 0 {
		return 0, fmt.Errorf("%w: binary hint 0 outside terminator position", ErrMalformed)
	}
	if mag > uint64(maxID) {
		return 0, &LimitError{What: "id", Limit: maxID}
	}
	if u&1 == 1 {
		return -int64(mag), nil
	}
	return int64(mag), nil
}

// WriteBinary writes the proof in the binary format.
func WriteBinary(w io.Writer, p *Proof) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return err
	}
	if err := bw.WriteByte(0); err != nil { // flags
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(u uint64) error {
		n := binary.PutUvarint(buf[:], u)
		_, err := bw.Write(buf[:n])
		return err
	}
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.Del {
			if err := bw.WriteByte('d'); err != nil {
				return err
			}
			if err := putUvarint(uint64(s.ID)); err != nil {
				return err
			}
			for _, id := range s.Deleted {
				if err := putUvarint(uint64(id)); err != nil {
					return err
				}
			}
		} else {
			if err := bw.WriteByte('a'); err != nil {
				return err
			}
			if err := putUvarint(uint64(s.ID)); err != nil {
				return err
			}
			for _, l := range s.C {
				if err := putUvarint(mapLit(l)); err != nil {
					return err
				}
			}
			if err := bw.WriteByte(0); err != nil {
				return err
			}
			for _, h := range s.Hints {
				if err := putUvarint(mapHint(h)); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte(0); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary proof under DefaultLimits.
func ReadBinary(r io.Reader) (*Proof, error) {
	return ReadBinaryLimited(r, DefaultLimits())
}

// ReadBinaryLimited is ReadBinary with explicit Limits. Truncation and
// encoding garbage wrap ErrMalformed; limit violations wrap ErrLimit.
func ReadBinaryLimited(r io.Reader, lim Limits) (*Proof, error) {
	lim = lim.withDefaults()
	br := bufio.NewReader(newCappedReader(r, lim.MaxBytes))
	head := make([]byte, len(binaryMagic)+2)
	if _, err := io.ReadFull(br, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated binary header", ErrMalformed)
		}
		return nil, limitOr(err, fmt.Errorf("lrat: binary header: %w", err))
	}
	if string(head[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, head[:len(binaryMagic)])
	}
	if head[4] != binaryVersion {
		return nil, fmt.Errorf("%w: unsupported binary version %d", ErrMalformed, head[4])
	}
	if head[5] != 0 {
		return nil, fmt.Errorf("%w: unsupported flags %#x", ErrMalformed, head[5])
	}

	p := &Proof{}
	readUvarint := func(what string) (uint64, error) {
		u, err := binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("%w: truncated %s", ErrMalformed, what)
			}
			return 0, limitOr(err, fmt.Errorf("%w: %s: %v", ErrMalformed, what, err))
		}
		return u, nil
	}
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return p, nil
		}
		if err != nil {
			return nil, limitOr(err, fmt.Errorf("%w: step tag: %v", ErrMalformed, err))
		}
		if tag != 'a' && tag != 'd' {
			return nil, fmt.Errorf("%w: bad step tag %#x", ErrMalformed, tag)
		}
		if len(p.Steps) >= lim.MaxSteps {
			return nil, &LimitError{What: "steps", Limit: int64(lim.MaxSteps)}
		}
		id, err := readUvarint("step id")
		if err != nil {
			return nil, err
		}
		if id == 0 || id > uint64(lim.MaxID) {
			if id == 0 {
				return nil, fmt.Errorf("%w: step %d: id 0", ErrMalformed, len(p.Steps))
			}
			return nil, &LimitError{What: "id", Limit: lim.MaxID}
		}
		s := Step{ID: int64(id), Del: tag == 'd'}
		if s.Del {
			for {
				u, err := readUvarint("deletion")
				if err != nil {
					return nil, err
				}
				if u == 0 {
					break
				}
				if u > uint64(lim.MaxID) {
					return nil, &LimitError{What: "id", Limit: lim.MaxID}
				}
				if len(s.Deleted) >= lim.MaxHints {
					return nil, &LimitError{What: "hints", Limit: int64(lim.MaxHints)}
				}
				s.Deleted = append(s.Deleted, int64(u))
			}
			p.Steps = append(p.Steps, s)
			continue
		}
		for {
			u, err := readUvarint("clause")
			if err != nil {
				return nil, err
			}
			if u == 0 {
				break
			}
			if len(s.C) >= lim.MaxClauseLen {
				return nil, &LimitError{What: "clause length", Limit: int64(lim.MaxClauseLen)}
			}
			l, err := unmapLit(u, lim.MaxVar)
			if err != nil {
				return nil, err
			}
			s.C = append(s.C, l)
		}
		for {
			u, err := readUvarint("hints")
			if err != nil {
				return nil, err
			}
			if u == 0 {
				break
			}
			if len(s.Hints) >= lim.MaxHints {
				return nil, &LimitError{What: "hints", Limit: int64(lim.MaxHints)}
			}
			h, err := unmapHint(u, lim.MaxID)
			if err != nil {
				return nil, err
			}
			s.Hints = append(s.Hints, h)
		}
		p.Steps = append(p.Steps, s)
	}
}

// limitOr unwraps a *LimitError riding inside err (the capped reader's
// byte-budget violation surfaces through bufio), else returns alt.
func limitOr(err, alt error) error {
	var le *LimitError
	if errors.As(err, &le) {
		return le
	}
	return alt
}
