package lrat

import (
	"bytes"
	"fmt"

	"repro/internal/cnf"
)

// Validation is the trust boundary for verdicts that arrive over a wire
// instead of being computed locally. A replica receiving "formula F is
// unsatisfiable, here is the hinted proof" must not take the sender's word
// for it: Validate re-derives the claim from the formula and the proof
// bytes alone, so a corrupted, truncated or forged proof is rejected before
// the verdict is ever stored or served. This is what makes replication in
// internal/cluster integrity-checking rather than byte-copying.

// ValidationError reports why incoming proof bytes do not establish the
// claimed verdict. It is the typed rejection the replication protocol
// requires: a replica answers it with "rejected, do not retry with the same
// bytes", never with an ack.
type ValidationError struct {
	// Stage names the phase that failed: "parse" or "check".
	Stage string
	// Step is the failing step index for check failures, -1 otherwise.
	Step int
	// Reason is the human-readable cause.
	Reason string
}

func (e *ValidationError) Error() string {
	if e.Step >= 0 {
		return fmt.Sprintf("lrat: verdict validation failed (%s, step %d): %s", e.Stage, e.Step, e.Reason)
	}
	return fmt.Sprintf("lrat: verdict validation failed (%s): %s", e.Stage, e.Reason)
}

// Validate checks that proofBytes is a well-formed LRAT proof (text or
// binary, auto-detected) that refutes f. The bytes are treated as
// untrusted: parsing runs under lim (zero-value fields take the parser
// defaults). On success the check result is returned; when the bytes do
// not establish the refutation the error is a *ValidationError; any other
// error is environmental (context cancellation via opt.Ctx).
func Validate(f *cnf.Formula, proofBytes []byte, lim Limits, opt Options) (*Result, error) {
	var p *Proof
	var err error
	if DetectBinary(proofBytes) {
		p, err = ReadBinaryLimited(bytes.NewReader(proofBytes), lim)
	} else {
		p, err = ReadLimited(bytes.NewReader(proofBytes), lim)
	}
	if err != nil {
		return nil, &ValidationError{Stage: "parse", Step: -1, Reason: err.Error()}
	}
	res, err := Check(f, p, opt)
	if err != nil {
		// Cancellation/deadline from opt.Ctx: not a verdict on the bytes.
		return res, err
	}
	if !res.OK {
		return res, &ValidationError{Stage: "check", Step: res.FailedStep, Reason: res.Reason}
	}
	if !res.Refuted {
		return res, &ValidationError{Stage: "check", Step: -1,
			Reason: "proof checks but derives no empty clause (not a refutation)"}
	}
	return res, nil
}
