package sched

import "testing"

func TestStrategyParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
		ok   bool
	}{
		{"chunk", StrategyChunk, true},
		{"dag", StrategyDAG, true},
		{"DAG", StrategyChunk, false},
		{"", StrategyChunk, false},
	} {
		got, err := ParseStrategy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if StrategyChunk.String() != "chunk" || StrategyDAG.String() != "dag" {
		t.Errorf("Strategy.String: got %q, %q", StrategyChunk, StrategyDAG)
	}
}

// The diamond 0 -> {1, 2} -> 3 with task costs 1, 5, 2, 1: two roots is
// wrong (only 0 has no predecessor), the critical path is 0-1-3.
func TestDAGStatsDiamond(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.SetCost(0, 1)
	b.SetCost(1, 5)
	b.SetCost(2, 2)
	b.SetCost(3, 1)
	st := b.Build().Stats()
	want := Stats{Tasks: 4, Edges: 4, Roots: 1, Depth: 3, MaxWidth: 2,
		AvgOut: 1, TotalCost: 9, CritCost: 7}
	if st != want {
		t.Fatalf("diamond stats = %+v, want %+v", st, want)
	}
}

func TestDAGStatsChainAndIndependent(t *testing.T) {
	// A 5-task chain: depth 5, width 1, crit == total.
	b := NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	st := b.Build().Stats()
	if st.Depth != 5 || st.MaxWidth != 1 || st.CritCost != st.TotalCost || st.Roots != 1 {
		t.Fatalf("chain stats = %+v", st)
	}

	// 5 independent tasks: depth 1, width 5, all roots.
	st = NewBuilder(5).Build().Stats()
	if st.Depth != 1 || st.MaxWidth != 5 || st.Roots != 5 || st.Edges != 0 || st.CritCost != 1 {
		t.Fatalf("independent stats = %+v", st)
	}
}

func TestDAGStatsEmpty(t *testing.T) {
	st := NewBuilder(0).Build().Stats()
	if st.Tasks != 0 || st.Depth != 0 || st.CritCost != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

func TestBuilderRejectsBackwardEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("backward edge did not panic")
		}
	}()
	NewBuilder(3).AddEdge(2, 1)
}

// Duplicate edges must stay consistent: the in-degree counts both citations
// and completion releases both, so the successor still becomes ready.
func TestDuplicateEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	d := b.Build()
	if d.indeg[1] != 2 || len(d.Successors(0)) != 2 {
		t.Fatalf("dup edges: indeg=%d succ=%v", d.indeg[1], d.Successors(0))
	}
	order := runCollect(t, d, Options{Workers: 2})
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("dup-edge execution order = %v", order)
	}
}
