package sched

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// The work-stealing runtime. Each worker owns a bounded ring deque; the
// initial ready set (in-degree-zero tasks) is dealt round-robin across the
// deques, a worker pops its own deque LIFO (the task it released most
// recently is the one whose antecedents are hottest in cache) and steals
// FIFO from random victims (the oldest task in a victim's deque is the one
// furthest from the victim's current locality, so stealing it costs the
// victim least). Completing a task decrements each successor's in-degree;
// a successor reaching zero is pushed onto the completing worker's own
// deque, or onto a shared overflow list when the deque is full — overflow
// keeps the bounded deques an optimization, never a correctness limit.
//
// # Watermark checkpoints
//
// When Options.Every > 0 and OnEpoch is set, Run maintains the drained-task
// watermark: the largest W such that every task with index < W has
// completed. Whenever the watermark crosses a multiple of Every, OnEpoch
// fires with the new watermark under the watermark lock, serializing epochs
// the way the chunk verifier serializes its journal appends. A resumed run
// passes the recorded watermark as StartWatermark: tasks below it are
// treated as already complete (their out-edges are released before
// seeding), tasks at or above it run again — callers' tasks must therefore
// be idempotent, which pure validation tasks are.
//
// # Failure isolation
//
// A panic inside the TaskFunc is recovered and the task retried once on the
// same worker with attempt=1 (the caller rebuilds whatever per-worker state
// it suspects, e.g. a fresh replay scratchpad or a fallback engine). A
// second panic stops the run with a *TaskPanicError attributing worker,
// task and attempts. The first stop cause wins — later failures, context
// cancellation and OnEpoch errors all funnel through the same slot.

// TaskFunc executes one task. worker identifies the executing worker's
// dense index (stable across the run, usable to index caller-side per-worker
// state — only one goroutine ever passes a given worker index). attempt is 0
// for the first try and 1 for the post-panic retry.
type TaskFunc func(worker, task, attempt int) error

// Options configures Run.
type Options struct {
	// Workers is the number of worker goroutines; <= 0 selects GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, cancels the run: Run stops promptly and returns
	// ctx.Err(). Cancellation is polled once per task.
	Ctx context.Context
	// Obs, when non-nil, receives sched.* counters (tasks, steals,
	// overflow, retries) and per-worker trace lanes with task.claim /
	// task.steal / task.release instants.
	Obs *obs.Registry
	// TrackPrefix names the flight-recorder lanes ("<prefix>-w<N>");
	// empty selects "sched".
	TrackPrefix string

	// Every is the watermark-epoch interval in drained tasks; 0 disables
	// epochs. OnEpoch fires with the new watermark whenever it crosses a
	// multiple of Every; an error from OnEpoch stops the run.
	Every   int
	OnEpoch func(watermark int) error
	// StartWatermark resumes the run: tasks below it are treated as
	// complete and never re-executed.
	StartWatermark int
}

// RunStats reports what the scheduler did.
type RunStats struct {
	// Executed counts tasks that ran to completion in this run (excludes
	// tasks below StartWatermark).
	Executed int64
	// Steals counts tasks acquired from another worker's deque.
	Steals int64
	// Overflow counts ready tasks that missed a full deque and took the
	// shared overflow list instead.
	Overflow int64
	// Retries counts post-panic second attempts.
	Retries int64
}

// TaskPanicError reports a task whose retry panicked too.
type TaskPanicError struct {
	Worker   int
	Task     int
	Attempts int
	Value    any
	Stack    []byte
}

func (e *TaskPanicError) Error() string {
	return fmt.Sprintf("sched: worker %d: task %d panicked after %d attempts: %v",
		e.Worker, e.Task, e.Attempts, e.Value)
}

// dequeCap bounds each worker's ring deque. A variable so tests can shrink
// it to force the overflow path.
var dequeCap = 256

// deque is one worker's bounded ring. A mutex per deque is plenty here:
// the owner's pops dominate and contend only with occasional steals.
type deque struct {
	mu         sync.Mutex
	buf        []int32
	head, tail int // tasks live at [head, tail); indices grow unbounded, mod cap
}

func (q *deque) pushTail(t int32) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.tail-q.head == len(q.buf) {
		return false
	}
	q.buf[q.tail%len(q.buf)] = t
	q.tail++
	return true
}

func (q *deque) popTail() (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.tail == q.head {
		return 0, false
	}
	q.tail--
	return q.buf[q.tail%len(q.buf)], true
}

func (q *deque) stealHead() (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.tail == q.head {
		return 0, false
	}
	t := q.buf[q.head%len(q.buf)]
	q.head++
	return t, true
}

type runState struct {
	d   *DAG
	fn  TaskFunc
	ctx context.Context

	indeg  []int32 // live in-degrees, decremented atomically
	deques []*deque

	overflowMu sync.Mutex
	overflow   []int32

	remaining atomic.Int64
	stopPtr   atomic.Pointer[error]

	// Parking: a worker that finds no work anywhere re-checks after
	// snapshotting sig; a releaser bumps sig before waking. Both sides use
	// sequentially consistent atomics, so either the parker sees the new
	// sig and retries, or the releaser sees the waiter and broadcasts.
	sig     atomic.Uint64
	waiters atomic.Int32
	parkMu  sync.Mutex
	park    *sync.Cond

	// Watermark state (only maintained when onEpoch is set).
	onEpoch   func(int) error
	every     int
	wmMu      sync.Mutex
	done      []bool
	wm        int
	nextEpoch int

	executed, steals, overflowN, retries atomic.Int64
}

func (rs *runState) stop(err error) {
	e := err
	rs.stopPtr.CompareAndSwap(nil, &e)
	rs.wake()
}

// wake is the releaser side of the parking protocol.
func (rs *runState) wake() {
	rs.sig.Add(1)
	if rs.waiters.Load() > 0 {
		rs.parkMu.Lock()
		rs.park.Broadcast()
		rs.parkMu.Unlock()
	}
}

func (rs *runState) finished() bool {
	return rs.remaining.Load() == 0 || rs.stopPtr.Load() != nil
}

// acquire finds the next task: own deque (LIFO), the shared overflow list,
// then FIFO steals from victims in random order. stolen reports a steal.
func (rs *runState) acquire(w int, rng *rand.Rand) (task int32, stolen bool, ok bool) {
	if t, ok := rs.deques[w].popTail(); ok {
		return t, false, true
	}
	rs.overflowMu.Lock()
	if n := len(rs.overflow); n > 0 {
		t := rs.overflow[0]
		rs.overflow = rs.overflow[1:]
		rs.overflowMu.Unlock()
		return t, false, true
	}
	rs.overflowMu.Unlock()
	if len(rs.deques) > 1 {
		for _, v := range rng.Perm(len(rs.deques)) {
			if v == w {
				continue
			}
			if t, ok := rs.deques[v].stealHead(); ok {
				return t, true, true
			}
		}
	}
	return 0, false, false
}

// release pushes a newly-ready task toward worker w's deque.
func (rs *runState) release(w int, t int32) {
	if !rs.deques[w].pushTail(t) {
		rs.overflowMu.Lock()
		rs.overflow = append(rs.overflow, t)
		rs.overflowMu.Unlock()
		rs.overflowN.Add(1)
	}
}

func (rs *runState) attempt(w, t, attempt int) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			err = &TaskPanicError{Worker: w, Task: t, Attempts: attempt + 1,
				Value: r, Stack: debug.Stack()}
			panicked = true
		}
	}()
	return rs.fn(w, t, attempt), false
}

// complete releases task t's successors and advances the watermark.
func (rs *runState) complete(w, t int, wtrack *trace.Track) {
	released := false
	for _, s := range rs.d.Successors(t) {
		if atomic.AddInt32(&rs.indeg[s], -1) == 0 {
			rs.release(w, s)
			wtrack.Instant("task.release", int64(s))
			released = true
		}
	}
	rs.executed.Add(1)
	if rs.onEpoch != nil {
		rs.wmMu.Lock()
		rs.done[t] = true
		for rs.wm < rs.d.n && rs.done[rs.wm] {
			rs.wm++
		}
		if rs.wm >= rs.nextEpoch {
			wm := rs.wm
			rs.nextEpoch = (wm/rs.every + 1) * rs.every
			if err := rs.onEpoch(wm); err != nil {
				rs.wmMu.Unlock()
				rs.stop(err)
				return
			}
		}
		rs.wmMu.Unlock()
	}
	if rs.remaining.Add(-1) == 0 {
		rs.wake()
		return
	}
	if released {
		rs.wake()
	}
}

func (rs *runState) worker(w int, wtrack *trace.Track, wspan *obs.Span) {
	defer wspan.End()
	// Per-worker deterministic victim order; no shared rand state.
	rng := rand.New(rand.NewSource(int64(w)*0x9E3779B9 + 1))
	for {
		if rs.finished() {
			return
		}
		t, stolen, ok := rs.acquire(w, rng)
		if !ok {
			g := rs.sig.Load()
			if t, stolen, ok = rs.acquire(w, rng); !ok {
				if rs.finished() {
					return
				}
				rs.parkMu.Lock()
				rs.waiters.Add(1)
				if rs.sig.Load() == g && !rs.finished() {
					rs.park.Wait()
				}
				rs.waiters.Add(-1)
				rs.parkMu.Unlock()
				continue
			}
		}
		if stolen {
			rs.steals.Add(1)
			wtrack.Instant("task.steal", int64(t))
		} else {
			wtrack.Instant("task.claim", int64(t))
		}
		if rs.ctx != nil {
			if err := rs.ctx.Err(); err != nil {
				rs.stop(err)
				return
			}
		}
		err, panicked := rs.attempt(w, int(t), 0)
		if panicked {
			rs.retries.Add(1)
			err, _ = rs.attempt(w, int(t), 1)
		}
		if err != nil {
			rs.stop(err)
			return
		}
		rs.complete(w, int(t), wtrack)
	}
}

// Run executes fn over every task of d in dependency order, work-stealing
// style. It returns when all tasks at or above StartWatermark completed, or
// when the run stopped (context, task error, double panic, OnEpoch error) —
// the first stop cause is returned alongside the partial stats.
func Run(d *DAG, opt Options, fn TaskFunc) (*RunStats, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	start := opt.StartWatermark
	if start < 0 {
		start = 0
	}
	if start > d.n {
		return nil, fmt.Errorf("sched: start watermark %d beyond %d tasks", start, d.n)
	}
	if opt.OnEpoch != nil && opt.Every <= 0 {
		return nil, fmt.Errorf("sched: OnEpoch requires a positive Every")
	}

	span := opt.Obs.StartSpan("sched-run")
	defer span.End()

	rs := &runState{d: d, fn: fn, ctx: opt.Ctx}
	rs.park = sync.NewCond(&rs.parkMu)
	rs.indeg = append([]int32(nil), d.indeg...)
	rs.remaining.Store(int64(d.n - start))
	if opt.OnEpoch != nil {
		rs.onEpoch = opt.OnEpoch
		rs.every = opt.Every
		rs.done = make([]bool, d.n)
		rs.wm = start
		rs.nextEpoch = (start/opt.Every + 1) * opt.Every
		for t := 0; t < start; t++ {
			rs.done[t] = true
		}
	}
	// Resume: tasks below the watermark are complete; release their edges
	// before computing the ready set.
	for t := 0; t < start; t++ {
		for _, s := range d.Successors(t) {
			atomic.AddInt32(&rs.indeg[s], -1)
		}
	}
	if rs.remaining.Load() == 0 {
		return &RunStats{}, nil
	}

	rs.deques = make([]*deque, workers)
	for w := range rs.deques {
		rs.deques[w] = &deque{buf: make([]int32, dequeCap)}
	}
	// Seed the ready set round-robin so the initial work is spread before
	// the first steal is ever needed.
	next := 0
	for t := start; t < d.n; t++ {
		if rs.indeg[t] == 0 {
			rs.release(next%workers, int32(t))
			next++
		}
	}

	prefix := opt.TrackPrefix
	if prefix == "" {
		prefix = "sched"
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wtrack := opt.Obs.NewTrack(fmt.Sprintf("%s-w%d", prefix, w))
		wspan := span.ChildOn(wtrack, fmt.Sprintf("%s-w%d", prefix, w))
		wg.Add(1)
		go func(w int, wtrack *trace.Track, wspan *obs.Span) {
			defer wg.Done()
			rs.worker(w, wtrack, wspan)
		}(w, wtrack, wspan)
	}
	wg.Wait()

	st := &RunStats{
		Executed: rs.executed.Load(),
		Steals:   rs.steals.Load(),
		Overflow: rs.overflowN.Load(),
		Retries:  rs.retries.Load(),
	}
	opt.Obs.Counter("sched.tasks").Add(st.Executed)
	opt.Obs.Counter("sched.steals").Add(st.Steals)
	opt.Obs.Counter("sched.overflow").Add(st.Overflow)
	opt.Obs.Counter("sched.retries").Add(st.Retries)
	if p := rs.stopPtr.Load(); p != nil {
		return st, *p
	}
	return st, nil
}
