package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// runCollect executes the DAG and returns the global completion order
// (serialized by a mutex, so it is a valid linearization of the run).
func runCollect(t *testing.T, d *DAG, opt Options) []int {
	t.Helper()
	var mu sync.Mutex
	var order []int
	_, err := Run(d, opt, func(w, task, attempt int) error {
		mu.Lock()
		order = append(order, task)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return order
}

// checkTopological fails unless every task ran after all its predecessors.
func checkTopological(t *testing.T, d *DAG, order []int) {
	t.Helper()
	pos := make(map[int]int, len(order))
	for i, task := range order {
		if prev, dup := pos[task]; dup {
			t.Fatalf("task %d ran twice (positions %d and %d)", task, prev, i)
		}
		pos[task] = i
	}
	for from := 0; from < d.Tasks(); from++ {
		for _, to := range d.Successors(from) {
			pf, okF := pos[from]
			pt, okT := pos[int(to)]
			if !okF || !okT {
				continue
			}
			if pf > pt {
				t.Fatalf("edge %d->%d violated: %d ran at %d, %d at %d", from, to, from, pf, to, pt)
			}
		}
	}
}

func TestRunChainRespectsOrder(t *testing.T) {
	b := NewBuilder(100)
	for i := 0; i < 99; i++ {
		b.AddEdge(i, i+1)
	}
	d := b.Build()
	order := runCollect(t, d, Options{Workers: 4})
	if len(order) != 100 {
		t.Fatalf("executed %d of 100 tasks", len(order))
	}
	for i, task := range order {
		if task != i {
			t.Fatalf("chain ran out of order at position %d: task %d", i, task)
		}
	}
}

func TestRunEmptyDAG(t *testing.T) {
	st, err := Run(NewBuilder(0).Build(), Options{Workers: 3}, func(w, task, attempt int) error {
		t.Error("task ran on empty DAG")
		return nil
	})
	if err != nil || st.Executed != 0 {
		t.Fatalf("empty run: %+v, %v", st, err)
	}
}

// randomDAG builds a DAG whose shape is drawn from rng: forward edges with
// probability p over a window, so both wide and chain-like graphs appear.
func randomDAG(rng *rand.Rand) *DAG {
	n := 1 + rng.Intn(120)
	b := NewBuilder(n)
	window := 1 + rng.Intn(16)
	p := rng.Float64() * 0.8
	for to := 1; to < n; to++ {
		lo := to - window
		if lo < 0 {
			lo = 0
		}
		for from := lo; from < to; from++ {
			if rng.Float64() < p {
				b.AddEdge(from, to)
			}
		}
		b.SetCost(to, int64(1+rng.Intn(8)))
	}
	return b.Build()
}

// 200 randomized DAG shapes at random worker counts; under `go test -race`
// this doubles as the scheduler's data-race stress.
func TestRunRandomizedStress(t *testing.T) {
	rng := rand.New(rand.NewSource(0xDA6))
	for round := 0; round < 200; round++ {
		d := randomDAG(rng)
		workers := 1 + rng.Intn(8)
		order := runCollect(t, d, Options{Workers: workers})
		if len(order) != d.Tasks() {
			t.Fatalf("round %d: executed %d of %d tasks", round, len(order), d.Tasks())
		}
		checkTopological(t, d, order)
	}
}

func TestRunPanicRetriesOnce(t *testing.T) {
	d := NewBuilder(50).Build()
	var firstAttempts, retries atomic.Int64
	st, err := Run(d, Options{Workers: 4}, func(w, task, attempt int) error {
		if attempt == 0 {
			firstAttempts.Add(1)
			if task == 17 {
				panic("boom")
			}
			return nil
		}
		retries.Add(1)
		if task != 17 {
			t.Errorf("retry of task %d, want 17", task)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if retries.Load() != 1 || st.Retries != 1 {
		t.Fatalf("retries = %d (stats %d), want 1", retries.Load(), st.Retries)
	}
	if st.Executed != 50 {
		t.Fatalf("executed %d of 50", st.Executed)
	}
}

func TestRunDoublePanicAttributes(t *testing.T) {
	d := NewBuilder(20).Build()
	_, err := Run(d, Options{Workers: 3}, func(w, task, attempt int) error {
		if task == 5 {
			panic(fmt.Sprintf("attempt %d", attempt))
		}
		return nil
	})
	var tp *TaskPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("err = %v, want TaskPanicError", err)
	}
	if tp.Task != 5 || tp.Attempts != 2 || tp.Value != "attempt 1" || len(tp.Stack) == 0 {
		t.Fatalf("panic attribution = %+v", tp)
	}
}

func TestRunTaskErrorStops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	sentinel := errors.New("bad step")
	var ran atomic.Int64
	_, err := Run(b.Build(), Options{Workers: 2}, func(w, task, attempt int) error {
		ran.Add(1)
		if task == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if ran.Load() != 2 {
		t.Fatalf("ran %d tasks, want 2 (task 2 must not run after the failure)", ran.Load())
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := NewBuilder(1000).Build()
	var ran atomic.Int64
	_, err := Run(d, Options{Workers: 2, Ctx: ctx}, func(w, task, attempt int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop the run (%d tasks ran)", n)
	}
}

// Watermark epochs: OnEpoch must observe strictly increasing watermarks at
// multiples-or-beyond of Every, and the watermark only advances over a
// fully-drained prefix.
func TestRunWatermarkEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		d := randomDAG(rng)
		every := 1 + rng.Intn(10)
		var mu sync.Mutex
		completed := map[int]bool{}
		var marks []int
		_, err := Run(d, Options{
			Workers: 1 + rng.Intn(4),
			Every:   every,
			OnEpoch: func(wm int) error {
				// Called under the watermark lock; every task below wm must
				// have completed already.
				mu.Lock()
				defer mu.Unlock()
				for t := 0; t < wm; t++ {
					if !completed[t] {
						return fmt.Errorf("watermark %d but task %d incomplete", wm, t)
					}
				}
				marks = append(marks, wm)
				return nil
			},
		}, func(w, task, attempt int) error {
			mu.Lock()
			completed[task] = true
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		last := 0
		for _, wm := range marks {
			if wm <= last {
				t.Fatalf("round %d: non-increasing watermark %v", round, marks)
			}
			last = wm
		}
	}
}

func TestRunOnEpochErrorStops(t *testing.T) {
	d := NewBuilder(100).Build()
	sentinel := errors.New("sink full")
	_, err := Run(d, Options{Workers: 2, Every: 10, OnEpoch: func(wm int) error {
		return sentinel
	}}, func(w, task, attempt int) error { return nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

// Resume: tasks below StartWatermark never run, everything at or above it
// does, and dependency order still holds for the re-run suffix.
func TestRunResumeFromWatermark(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		d := randomDAG(rng)
		start := rng.Intn(d.Tasks() + 1)
		order := runCollect(t, d, Options{Workers: 1 + rng.Intn(4), StartWatermark: start})
		if len(order) != d.Tasks()-start {
			t.Fatalf("round %d: resumed run executed %d, want %d", round, len(order), d.Tasks()-start)
		}
		for _, task := range order {
			if task < start {
				t.Fatalf("round %d: task %d below watermark %d re-ran", round, task, start)
			}
		}
		checkTopological(t, d, order)
	}
}

func TestRunStartWatermarkBeyondTasks(t *testing.T) {
	if _, err := Run(NewBuilder(5).Build(), Options{StartWatermark: 6}, nil); err == nil {
		t.Fatal("watermark beyond task count did not error")
	}
	st, err := Run(NewBuilder(5).Build(), Options{StartWatermark: 5},
		func(w, task, attempt int) error { t.Error("task ran"); return nil })
	if err != nil || st.Executed != 0 {
		t.Fatalf("fully-resumed run: %+v, %v", st, err)
	}
}

// Overflow: with a one-slot deque and many roots, the shared overflow list
// must absorb the rest and every task must still run exactly once.
func TestRunDequeOverflow(t *testing.T) {
	old := dequeCap
	dequeCap = 1
	defer func() { dequeCap = old }()
	d := NewBuilder(500).Build()
	var ran atomic.Int64
	st, err := Run(d, Options{Workers: 3}, func(w, task, attempt int) error {
		ran.Add(1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran.Load() != 500 || st.Executed != 500 {
		t.Fatalf("executed %d (stats %d), want 500", ran.Load(), st.Executed)
	}
	if st.Overflow == 0 {
		t.Fatal("one-slot deques with 500 roots recorded no overflow")
	}
}

// An imbalanced seed (all work released by one root chain) must produce
// steals when more than one worker is available.
func TestRunSteals(t *testing.T) {
	// One root fanning out to many independent heavy tasks: the fan-out all
	// lands on the completing worker's deque, so other workers must steal.
	n := 400
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	var spin atomic.Int64
	st, err := Run(b.Build(), Options{Workers: 4}, func(w, task, attempt int) error {
		// A little real work so workers overlap.
		for i := 0; i < 2000; i++ {
			spin.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.Executed != int64(n) {
		t.Fatalf("executed %d of %d", st.Executed, n)
	}
	if st.Steals == 0 {
		t.Skip("no steals observed (single-CPU scheduling can serialize workers)")
	}
}

// Worker indices passed to the TaskFunc must be usable as indexes into
// caller-side per-worker state: only one goroutine per index.
func TestRunWorkerIndexExclusive(t *testing.T) {
	d := NewBuilder(2000).Build()
	workers := 4
	inUse := make([]atomic.Int32, workers)
	_, err := Run(d, Options{Workers: workers}, func(w, task, attempt int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker index %d out of range", w)
		}
		if inUse[w].Add(1) != 1 {
			return fmt.Errorf("worker index %d used concurrently", w)
		}
		defer inUse[w].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
