// Package sched schedules dependency-aware parallel verification over a
// task DAG. The verifier's unit of work is one recorded proof step; the
// hint lists recorded by the LRAT pipeline name exactly which earlier steps
// a step's conflict touched, so the clause-dependency DAG is available for
// free: nodes are proof additions, edges point from a hinted antecedent's
// addition step to the step that cites it. Fixed contiguous chunking (the
// baseline in internal/core and internal/lrat) makes wall-clock track the
// slowest chunk; scheduling over the DAG makes it track the critical path.
//
// The package has two halves: Builder/DAG construct the dependency graph
// and its shape statistics (in-degrees, critical-path depth and cost, level
// widths), and Run executes a TaskFunc over it with a work-stealing
// scheduler — per-worker bounded deques seeded with the ready (in-degree
// zero) tasks, LIFO local pop for cache locality, FIFO steal from random
// victims, completion decrementing successors' in-degrees to release new
// work. See sched.go for the runtime and its checkpoint-watermark contract.
package sched

import "fmt"

// Strategy selects between the fixed-chunk baseline and DAG scheduling.
// The zero value is StrategyChunk so existing callers keep their behavior.
type Strategy int

const (
	// StrategyChunk slices the work into fixed contiguous per-worker chunks.
	StrategyChunk Strategy = iota
	// StrategyDAG schedules work-stealing style over the dependency DAG.
	StrategyDAG
)

func (s Strategy) String() string {
	if s == StrategyDAG {
		return "dag"
	}
	return "chunk"
}

// ParseStrategy maps the CLI spelling ("chunk" | "dag") to a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "chunk":
		return StrategyChunk, nil
	case "dag":
		return StrategyDAG, nil
	}
	return StrategyChunk, fmt.Errorf("sched: unknown strategy %q (want chunk or dag)", name)
}

// Builder accumulates tasks, forward edges and per-task costs for a DAG.
// Tasks are dense indices 0..n-1; every edge must point forward (from < to),
// which is what makes the graph acyclic by construction — proof steps only
// cite earlier steps, so the verifier's edges satisfy this for free.
type Builder struct {
	n     int
	edges []edge
	cost  []int64
}

type edge struct{ from, to int32 }

// NewBuilder starts a DAG over n tasks. Every task's cost defaults to 1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("sched: negative task count")
	}
	return &Builder{n: n}
}

// AddEdge records that task `to` depends on task `from`. Edges must point
// forward; a backward or self edge is a caller bug and panics. Duplicate
// edges are kept: the in-degree counts each citation and completion releases
// each one, so the bookkeeping stays consistent either way.
func (b *Builder) AddEdge(from, to int) {
	if from < 0 || to >= b.n || from >= to {
		panic(fmt.Sprintf("sched: edge %d->%d is not a forward edge over %d tasks", from, to, b.n))
	}
	b.edges = append(b.edges, edge{int32(from), int32(to)})
}

// SetCost records a task's relative cost (used only for critical-path
// statistics, never for scheduling decisions). Non-positive costs clamp to 1.
func (b *Builder) SetCost(task int, cost int64) {
	if b.cost == nil {
		b.cost = make([]int64, b.n)
	}
	if cost < 1 {
		cost = 1
	}
	b.cost[task] = cost
}

// DAG is the immutable dependency graph Run executes over: successor lists
// in CSR form, initial in-degrees, and per-task costs.
type DAG struct {
	n       int
	succ    []int32
	succOff []int32
	indeg   []int32
	cost    []int64
}

// Build freezes the builder into a DAG. The builder may be reused afterward
// only by discarding it; Build does not copy the cost slice.
func (b *Builder) Build() *DAG {
	d := &DAG{n: b.n, cost: b.cost}
	if d.cost == nil {
		d.cost = make([]int64, b.n)
	}
	for i := range d.cost {
		if d.cost[i] < 1 {
			d.cost[i] = 1
		}
	}
	d.indeg = make([]int32, b.n)
	d.succOff = make([]int32, b.n+1)
	for _, e := range b.edges {
		d.succOff[e.from+1]++
		d.indeg[e.to]++
	}
	for i := 0; i < b.n; i++ {
		d.succOff[i+1] += d.succOff[i]
	}
	d.succ = make([]int32, len(b.edges))
	fill := make([]int32, b.n)
	for _, e := range b.edges {
		d.succ[d.succOff[e.from]+fill[e.from]] = e.to
		fill[e.from]++
	}
	return d
}

// Tasks reports the number of tasks in the DAG.
func (d *DAG) Tasks() int { return d.n }

// Successors returns task t's successor list (shared storage; do not mutate).
func (d *DAG) Successors(t int) []int32 {
	return d.succ[d.succOff[t]:d.succOff[t+1]]
}

// Stats summarizes the DAG's shape. Depth and MaxWidth are in tasks over
// the level structure (a task's level is 1 + the max level of its
// predecessors); CritCost is the heaviest cost-weighted path, the lower
// bound no amount of parallelism can beat. TotalCost/CritCost is therefore
// the maximum speedup the DAG's shape admits.
type Stats struct {
	Tasks    int     `json:"tasks"`
	Edges    int     `json:"edges"`
	Roots    int     `json:"roots"` // in-degree-zero tasks: the initial ready set
	Depth    int     `json:"depth"` // critical path length in tasks
	MaxWidth int     `json:"max_width"`
	AvgOut   float64 `json:"avg_out_degree"`
	TotalCost int64  `json:"total_cost"`
	CritCost  int64  `json:"crit_cost"`
}

// Stats computes the DAG's shape statistics in one forward pass (task order
// is topological because every edge points forward).
func (d *DAG) Stats() Stats {
	st := Stats{Tasks: d.n, Edges: len(d.succ)}
	if d.n == 0 {
		return st
	}
	depth := make([]int32, d.n)   // level of each task, 0 until finalized
	reach := make([]int64, d.n)   // heaviest cost-weighted path ending before the task
	width := map[int32]int{}
	for t := 0; t < d.n; t++ {
		if d.indeg[t] == 0 {
			st.Roots++
		}
		lvl := depth[t] + 1
		crit := reach[t] + d.cost[t]
		width[lvl]++
		if int(lvl) > st.Depth {
			st.Depth = int(lvl)
		}
		if crit > st.CritCost {
			st.CritCost = crit
		}
		st.TotalCost += d.cost[t]
		for _, s := range d.Successors(t) {
			if depth[s] < lvl {
				depth[s] = lvl
			}
			if reach[s] < crit {
				reach[s] = crit
			}
		}
	}
	for _, n := range width {
		if n > st.MaxWidth {
			st.MaxWidth = n
		}
	}
	st.AvgOut = float64(st.Edges) / float64(st.Tasks)
	return st
}
