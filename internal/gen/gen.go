// Package gen generates the benchmark CNF families used to reproduce the
// paper's experiments. The original 2002-era instances (Velev's pipelined
// microprocessor suite, PicoJava II verification, barrel/longmult and
// fifo/w10 BMC instances, ISCAS-85 equivalence miters) are not
// redistributable, so each family is substituted by a parameterized
// generator producing structurally analogous UNSAT formulas — see DESIGN.md
// §3 for the substitution table and the argument that each substitute
// exercises the same code paths.
//
// Every generator returns an unsatisfiable formula built as a miter (or a
// BMC unrolling) over internal/circuit netlists; unsatisfiability follows
// from the functional equivalence of the two mitered implementations, which
// the package tests check by simulation and by solving.
package gen

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

// Instance is a named benchmark formula.
type Instance struct {
	Name   string
	Family string
	F      *cnf.Formula
}

// AdderEquiv miters a ripple-carry adder against a carry-select adder on
// width-bit operands — the equivalence-checking family (paper's c-series
// miters).
func AdderEquiv(width int) Instance {
	c := circuit.New()
	a := c.InputWord(width)
	b := c.InputWord(width)
	cin := c.Input()
	s1, co1 := c.RippleAdd(a, b, cin)
	s2, co2 := c.CarrySelectAdd(a, b, cin)
	diff := c.Or(c.NeqWord(s1, s2), c.Xor(co1, co2))
	return Instance{
		Name:   fmt.Sprintf("addeq_%d", width),
		Family: "equiv",
		F:      c.ToCNF(diff),
	}
}

// AluEquiv miters two ALU implementations: a mux tree over
// {ADD, SUB, AND, XOR} with a ripple adder versus a one-hot-decoded and-or
// network with a carry-select adder.
func AluEquiv(width int) Instance {
	c := circuit.New()
	a := c.InputWord(width)
	b := c.InputWord(width)
	op := c.InputWord(2)

	spec := aluMux(c, a, b, op)
	impl := aluOneHot(c, a, b, op)

	return Instance{
		Name:   fmt.Sprintf("alueq_%d", width),
		Family: "equiv",
		F:      c.ToCNF(c.NeqWord(spec, impl)),
	}
}

// aluMux computes the ALU result as a balanced mux tree using ripple
// arithmetic.
func aluMux(c *circuit.Circuit, a, b, op circuit.Word) circuit.Word {
	add, _ := c.RippleAdd(a, b, circuit.False)
	sub, _ := c.Sub(a, b)
	and := c.AndWord(a, b)
	xor := c.XorWord(a, b)
	lo := c.MuxWord(op[0], sub, add) // op=01 -> sub, op=00 -> add
	hi := c.MuxWord(op[0], xor, and) // op=11 -> xor, op=10 -> and
	return c.MuxWord(op[1], hi, lo)
}

// aluOneHot decodes the opcode one-hot and or-combines masked results,
// using carry-select arithmetic.
func aluOneHot(c *circuit.Circuit, a, b, op circuit.Word) circuit.Word {
	isAdd := c.And(op[0].Not(), op[1].Not())
	isSub := c.And(op[0], op[1].Not())
	isAnd := c.And(op[0].Not(), op[1])
	isXor := c.And(op[0], op[1])

	add, _ := c.CarrySelectAdd(a, b, circuit.False)
	nb := c.NotWord(b)
	sub, _ := c.CarrySelectAdd(a, nb, circuit.True)
	and := c.AndWord(a, b)
	xor := c.XorWord(a, b)

	out := make(circuit.Word, len(a))
	for i := range out {
		out[i] = c.OrN(
			c.And(isAdd, add[i]),
			c.And(isSub, sub[i]),
			c.And(isAnd, and[i]),
			c.And(isXor, xor[i]),
		)
	}
	return out
}

// Pipe miters a pipelined ALU datapath against its combinational spec over
// a packet of independent instructions flowing through the pipe — the
// substitute for Velev's pipelined-microprocessor family. stages controls
// how many instructions are in flight (and thus the unrolled depth), width
// the datapath width.
func Pipe(stages, width int) Instance {
	c := circuit.New()
	var mismatches []circuit.Signal
	for k := 0; k < stages; k++ {
		a := c.InputWord(width)
		b := c.InputWord(width)
		op := c.InputWord(2)
		spec := aluMux(c, a, b, op)
		// The "pipelined" implementation: stage 1 computes the operand
		// preparation (b or ~b, carry-in), stage 2 the carry-select sum and
		// the logical results, stage 3 the writeback select via one-hot
		// or-network. Pipeline registers are wires after unrolling; the
		// structural difference is the point.
		impl := aluOneHot(c, a, b, op)
		mismatches = append(mismatches, c.NeqWord(spec, impl))
	}
	bad := c.OrN(mismatches...)
	return Instance{
		Name:   fmt.Sprintf("pipe_s%dw%d", stages, width),
		Family: "pipe",
		F:      c.ToCNF(bad),
	}
}

// Barrel miters a logarithmic barrel rotator against a one-hot decoded
// rotator, iterated steps times (each step rotates the running word by a
// fresh input amount) — the substitute for the barrel BMC family.
func Barrel(bits, steps int) Instance {
	c := circuit.New()
	sh := shiftBitsFor(bits)
	w1 := c.InputWord(bits)
	w2 := append(circuit.Word(nil), w1...)
	var mismatches []circuit.Signal
	for k := 0; k < steps; k++ {
		amt := c.InputWord(sh)
		w1 = c.BarrelRotLeft(w1, amt)
		w2 = c.NaiveRotLeft(w2, amt)
		mismatches = append(mismatches, c.NeqWord(w1, w2))
	}
	bad := c.OrN(mismatches...)
	return Instance{
		Name:   fmt.Sprintf("barrel_b%ds%d", bits, steps),
		Family: "barrel",
		F:      c.ToCNF(bad),
	}
}

func shiftBitsFor(bits int) int {
	sh := 0
	for 1<<uint(sh) < bits {
		sh++
	}
	return sh
}

// Longmult miters two multiplier architectures (shift-add vs column
// compression) on a single output bit — the substitute for the longmult BMC
// family, whose difficulty grows with the bit index exactly as the original
// family's did.
func Longmult(width, bit int) Instance {
	c := circuit.New()
	a := c.InputWord(width)
	b := c.InputWord(width)
	m1 := c.MulShiftAdd(a, b)
	m2 := c.MulDiagonal(a, b)
	if bit >= width {
		bit = width - 1
	}
	bad := c.Xor(m1[bit], m2[bit])
	return Instance{
		Name:   fmt.Sprintf("longmult_w%db%d", width, bit),
		Family: "longmult",
		F:      c.ToCNF(bad),
	}
}

// Fifo miters two delay-line FIFO implementations of the given depth — a
// shift register versus a ring buffer with a wrapping write pointer —
// unrolled for cycles steps with fresh data pushed every cycle, comparing
// outputs each cycle. The substitute for the fifo8_N family of Table 3: the
// design is fixed, the unrolling depth grows.
func Fifo(depth, cycles int) Instance {
	// The ring buffer uses a binary pointer wrapping mod depth; round the
	// depth up to a power of two so the wrap is the adder's natural one.
	d := 1
	for d < depth {
		d <<= 1
	}
	depth = d
	pbits := shiftBitsFor(depth)

	c := circuit.New()
	const w = 2 // data width per element

	// Symbolic initial state: ring contents R_0..R_{depth-1} and an
	// arbitrary initial pointer p. The corresponding shift-register initial
	// contents are shreg[depth-1-j] = R[(p+j) mod depth], selected by
	// muxes over p — keeping both implementations symbolic so neither
	// constant-folds into the other.
	ring := make([]circuit.Word, depth)
	for i := range ring {
		ring[i] = c.InputWord(w)
	}
	ptr := c.InputWord(pbits)

	ptrEq := make([]circuit.Signal, depth)
	for v := 0; v < depth; v++ {
		ptrEq[v] = c.EqWord(ptr, c.ConstWord(pbits, uint64(v)))
	}
	shreg := make([]circuit.Word, depth)
	for i := 0; i < depth; i++ {
		j := depth - 1 - i
		slot := c.ConstWord(w, 0)
		for v := 0; v < depth; v++ {
			src := ring[(v+j)%depth]
			slot = c.MuxWord(ptrEq[v], src, slot)
		}
		shreg[i] = slot
	}

	var mismatches []circuit.Signal
	for k := 0; k < cycles; k++ {
		data := c.InputWord(w)

		// Shift register: output is the last slot; data enters at slot 0.
		shOut := shreg[depth-1]
		newShreg := make([]circuit.Word, depth)
		newShreg[0] = data
		for i := 1; i < depth; i++ {
			newShreg[i] = shreg[i-1]
		}
		shreg = newShreg

		// Ring buffer: the slot under the pointer holds the oldest element;
		// read it, overwrite it, advance the binary pointer (wraps mod
		// depth since depth is a power of two).
		eq := make([]circuit.Signal, depth)
		for v := 0; v < depth; v++ {
			eq[v] = c.EqWord(ptr, c.ConstWord(pbits, uint64(v)))
		}
		ringOut := c.ConstWord(w, 0)
		for i := 0; i < depth; i++ {
			ringOut = c.MuxWord(eq[i], ring[i], ringOut)
		}
		newRing := make([]circuit.Word, depth)
		for i := 0; i < depth; i++ {
			newRing[i] = c.MuxWord(eq[i], data, ring[i])
		}
		ring = newRing
		ptr = c.Inc(ptr)

		mismatches = append(mismatches, c.NeqWord(shOut, ringOut))
	}
	bad := c.OrN(mismatches...)
	return Instance{
		Name:   fmt.Sprintf("fifo%d_%d", depth, cycles),
		Family: "fifo",
		F:      c.ToCNF(bad),
	}
}

// Counter is the substitute for the SAT-2002 w10_N BMC family: a width-bit
// counter incremented by an enable input each cycle for k cycles cannot
// reach the value k+1. The assertion that it does is unsatisfiable, and the
// instance grows with k.
func Counter(width, k int) Instance {
	// The counter wraps mod 2^width, so the target k+1 must be
	// representable or the property would become reachable; widen if
	// needed.
	for 1<<uint(width) <= k+1 {
		width++
	}
	c := circuit.New()
	cnt := c.ConstWord(width, 0)
	target := uint64(k + 1)
	var reached []circuit.Signal
	for i := 0; i < k; i++ {
		en := c.Input()
		inc := c.Inc(cnt)
		cnt = c.MuxWord(en, inc, cnt)
		reached = append(reached, c.EqWord(cnt, c.ConstWord(width, target)))
	}
	bad := c.OrN(reached...)
	return Instance{
		Name:   fmt.Sprintf("cnt_w%dk%d", width, k),
		Family: "counter",
		F:      c.ToCNF(bad),
	}
}

// Control is the substitute for the PicoJava verification family: a
// round-iterated control/datapath mixing function implemented two ways
// (ripple add + barrel rotate vs carry-select add + decoded rotate), with
// the miter asserting the copies diverge after some round.
func Control(width, rounds int) Instance {
	c := circuit.New()
	sh := shiftBitsFor(width)
	s1 := c.InputWord(width)
	s2 := append(circuit.Word(nil), s1...)
	var mismatches []circuit.Signal
	for r := 0; r < rounds; r++ {
		k := c.InputWord(width)
		amt := c.InputWord(sh)

		t1, _ := c.RippleAdd(s1, k, circuit.False)
		t1 = c.BarrelRotLeft(t1, amt)
		s1 = c.XorWord(t1, k)

		t2, _ := c.CarrySelectAdd(s2, k, circuit.False)
		t2 = c.NaiveRotLeft(t2, amt)
		s2 = c.XorWord(t2, k)

		mismatches = append(mismatches, c.NeqWord(s1, s2))
	}
	bad := c.OrN(mismatches...)
	return Instance{
		Name:   fmt.Sprintf("ctl_w%dr%d", width, rounds),
		Family: "control",
		F:      c.ToCNF(bad),
	}
}

// SorterEquiv miters Batcher's odd-even merge sorting network against the
// naive insertion network on n single-bit lines — sorting-network
// verification, another classic combinational equivalence family.
func SorterEquiv(n int) Instance {
	c := circuit.New()
	in := make([]circuit.Signal, n)
	for i := range in {
		in[i] = c.Input()
	}
	a := c.OddEvenMergeSort(in)
	b := c.InsertionSortNetwork(in)
	bad := c.NeqWord(circuit.Word(a), circuit.Word(b))
	return Instance{
		Name:   fmt.Sprintf("sorteq_%d", n),
		Family: "equiv",
		F:      c.ToCNF(bad),
	}
}

// AdderEquiv3 miters all three adder architectures pairwise in one formula
// (ripple vs carry-select vs Kogge-Stone).
func AdderEquiv3(width int) Instance {
	c := circuit.New()
	a := c.InputWord(width)
	b := c.InputWord(width)
	cin := c.Input()
	s1, c1 := c.RippleAdd(a, b, cin)
	s2, c2 := c.CarrySelectAdd(a, b, cin)
	s3, c3 := c.KoggeStoneAdd(a, b, cin)
	bad := c.OrN(
		c.NeqWord(s1, s2), c.Xor(c1, c2),
		c.NeqWord(s2, s3), c.Xor(c2, c3),
	)
	return Instance{
		Name:   fmt.Sprintf("addeq3_%d", width),
		Family: "equiv",
		F:      c.ToCNF(bad),
	}
}

// Factor encodes integer factorization of n: two w-bit inputs a, b with
// a*b == n and a,b != 1, where w = bitlen(n). For prime n the formula is
// unsatisfiable — a multiplier-reasoning UNSAT family closely related to
// the hard equivalence-checking miters of the longmult tradition.
func Factor(n uint64) Instance {
	w := 0
	for v := n; v > 0; v >>= 1 {
		w++
	}
	c := circuit.New()
	a := c.InputWord(w)
	b := c.InputWord(w)
	// Zero-extend to 2w bits so the full product is available.
	ext := func(x circuit.Word) circuit.Word {
		out := append(circuit.Word(nil), x...)
		for len(out) < 2*w {
			out = append(out, circuit.False)
		}
		return out
	}
	product := c.MulShiftAdd(ext(a), ext(b))
	isN := c.EqWord(product, c.ConstWord(2*w, n))
	one := c.ConstWord(w, 1)
	notTrivial := c.And(c.NeqWord(a, one), c.NeqWord(b, one))
	return Instance{
		Name:   fmt.Sprintf("factor_%d", n),
		Family: "factor",
		F:      c.ToCNF(c.And(isN, notTrivial)),
	}
}

// PHP is the pigeonhole principle formula with n holes and n+1 pigeons —
// the classic hard UNSAT family used in tests and ablations.
func PHP(n int) Instance {
	f := cnf.NewFormula((n + 1) * n)
	v := func(p, h int) cnf.Var { return cnf.Var(p*n + h) }
	for p := 0; p <= n; p++ {
		c := make(cnf.Clause, 0, n)
		for h := 0; h < n; h++ {
			c = append(c, cnf.PosLit(v(p, h)))
		}
		f.AddClause(c)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(cnf.Clause{cnf.NegLit(v(p1, h)), cnf.NegLit(v(p2, h))})
			}
		}
	}
	return Instance{Name: fmt.Sprintf("php_%d", n), Family: "php", F: f}
}

// PHPPinned is the pigeonhole formula with n+k+1 pigeons and n+k holes,
// where the last k pigeons are pinned to the last k holes by unit clauses.
// Unit propagation eliminates the pinned pigeons and their holes at the root
// level, leaving a subproblem exactly as hard as PHP(n) — the pins model the
// large root-implied prefixes that preprocessing and BMC unrolling leave in
// industrial CNFs, which is the workload the incremental root trail in
// internal/bcp exists for: a scratch engine re-derives the k·(n+k) pinned
// closure on every check of the reverse scan, a persistent one derives it
// once.
func PHPPinned(n, k int) Instance {
	inst := PHP(n + k)
	m := n + k // holes in the base formula
	v := func(p, h int) cnf.Var { return cnf.Var(p*m + h) }
	for i := 0; i < k; i++ {
		// Pigeon n+1+i sits in hole n+i.
		inst.F.AddClause(cnf.Clause{cnf.PosLit(v(n+1+i, n+i))})
	}
	inst.Name = fmt.Sprintf("php_%d_pin%d", n, k)
	return inst
}

// XorChain encodes the inconsistent parity chain x1^x2=1, x2^x3=1, ...,
// xn^x1=1 for odd n (summing all equations gives 0=n mod 2=1).
func XorChain(n int) Instance {
	if n%2 == 0 {
		n++
	}
	f := cnf.NewFormula(n)
	for i := 0; i < n; i++ {
		a := cnf.Var(i)
		b := cnf.Var((i + 1) % n)
		f.AddClause(cnf.Clause{cnf.PosLit(a), cnf.PosLit(b)})
		f.AddClause(cnf.Clause{cnf.NegLit(a), cnf.NegLit(b)})
	}
	return Instance{Name: fmt.Sprintf("xorchain_%d", n), Family: "xor", F: f}
}

// RandUnsat produces a random 3-CNF at a clause/variable ratio of 6 — far
// above the phase transition, so instances are unsatisfiable with
// overwhelming probability (tests confirm per instance). seed selects the
// instance deterministically (xorshift; no global RNG).
func RandUnsat(seed int64, nVars int) Instance {
	return RandUnsatClauses(seed, nVars, 6*nVars)
}

// RandUnsatClauses is RandUnsat with an explicit clause count, so callers
// can pick a clause/variable ratio closer to the satisfiability threshold
// (~4.27): such instances are still unsatisfiable with high probability but
// need real search, giving long proofs with learned units spread through
// the trace — the shape the BCP benchmarks exercise.
func RandUnsatClauses(seed int64, nVars, nClauses int) Instance {
	x := uint64(seed)*2654435761 + 1
	next := func(n int) int {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int(x % uint64(n))
	}
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		c := make(cnf.Clause, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.NewLit(cnf.Var(next(nVars)), next(2) == 0))
		}
		f.AddClause(c)
	}
	name := fmt.Sprintf("rand3_v%ds%d", nVars, seed)
	if nClauses != 6*nVars {
		name = fmt.Sprintf("rand3_v%dc%ds%d", nVars, nClauses, seed)
	}
	return Instance{Name: name, Family: "random", F: f}
}

// RandUnsatChained is RandUnsat(seed, nVars) extended with a unit-rooted
// implication chain over chain fresh variables: y1, and yi → yi+1 for each
// link. The chain is satisfiable on its own and disjoint from the random
// core, so the proof is unchanged — but the root unit-propagation closure
// now contains chain literals, modeling the root-implied prefixes that
// preprocessing leaves in industrial CNFs. Scratch BCP engines re-derive the
// whole chain on every check of the reverse scan; the incremental root trail
// derives it once.
func RandUnsatChained(seed int64, nVars, chain int) Instance {
	inst := RandUnsat(seed, nVars)
	y := func(i int) cnf.Var { return cnf.Var(nVars + i) }
	inst.F.AddClause(cnf.Clause{cnf.PosLit(y(0))})
	for i := 1; i < chain; i++ {
		inst.F.AddClause(cnf.Clause{cnf.NegLit(y(i - 1)), cnf.PosLit(y(i))})
	}
	inst.Name = fmt.Sprintf("rand3_v%ds%d_chain%d", nVars, seed, chain)
	return inst
}
