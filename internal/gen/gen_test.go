package gen

import (
	"testing"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/solver"
)

// checkUnsat solves the instance, demands UNSAT, and verifies the proof
// with the independent verifier — the full pipeline every family must pass.
func checkUnsat(t *testing.T, inst Instance) {
	t.Helper()
	st, tr, _, stats, err := solver.Solve(inst.F, solver.Options{})
	if err != nil {
		t.Fatalf("%s: %v", inst.Name, err)
	}
	if st != solver.Unsat {
		t.Fatalf("%s: status = %v (conflicts=%d)", inst.Name, st, stats.Conflicts)
	}
	res, err := core.Verify(inst.F, tr, core.Options{Mode: core.ModeCheckMarked})
	if err != nil {
		t.Fatalf("%s: %v", inst.Name, err)
	}
	if !res.OK {
		t.Fatalf("%s: proof rejected at clause %d", inst.Name, res.FailedIndex)
	}
}

// checkMiterNontrivial flips the final assertion (the last clause, a unit
// asserting the miter output) and demands SAT: the miter must be falsifiable
// when we assert "the implementations agree somewhere", proving the
// instance is UNSAT for the intended reason and not via some accidental
// contradiction in the encoding.
func checkMiterNontrivial(t *testing.T, inst Instance) {
	t.Helper()
	g := inst.F.Clone()
	last := g.Clauses[len(g.Clauses)-1]
	if len(last) != 1 {
		t.Fatalf("%s: last clause is not the assert unit: %v", inst.Name, last)
	}
	g.Clauses[len(g.Clauses)-1] = cnf.Clause{last[0].Neg()}
	st, _, model, _, err := solver.Solve(g, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.Sat {
		t.Fatalf("%s: negated miter is %v, want SAT", inst.Name, st)
	}
	if !g.Eval(model) {
		t.Fatalf("%s: bogus model for negated miter", inst.Name)
	}
}

func TestAdderEquiv(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		inst := AdderEquiv(w)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestAluEquiv(t *testing.T) {
	for _, w := range []int{2, 4, 6} {
		inst := AluEquiv(w)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestPipe(t *testing.T) {
	inst := Pipe(2, 4)
	checkUnsat(t, inst)
	checkMiterNontrivial(t, inst)
}

func TestBarrel(t *testing.T) {
	inst := Barrel(4, 2)
	checkUnsat(t, inst)
	checkMiterNontrivial(t, inst)
}

func TestLongmult(t *testing.T) {
	for _, bit := range []int{0, 2, 4} {
		inst := Longmult(5, bit)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestLongmultClampsBit(t *testing.T) {
	inst := Longmult(4, 99)
	if inst.Name != "longmult_w4b3" {
		t.Errorf("Name = %s", inst.Name)
	}
	checkUnsat(t, inst)
}

func TestFifo(t *testing.T) {
	for _, cycles := range []int{3, 6, 10} {
		inst := Fifo(4, cycles)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestCounter(t *testing.T) {
	inst := Counter(5, 8)
	checkUnsat(t, inst)
	checkMiterNontrivial(t, inst)
}

func TestCounterAutoWidens(t *testing.T) {
	// Width 2 cannot represent target 9; the generator must widen rather
	// than produce a satisfiable (wrapping) instance.
	inst := Counter(2, 8)
	checkUnsat(t, inst)
}

func TestControl(t *testing.T) {
	inst := Control(4, 2)
	checkUnsat(t, inst)
	checkMiterNontrivial(t, inst)
}

func TestSorterEquiv(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		inst := SorterEquiv(n)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestAdderEquiv3(t *testing.T) {
	for _, w := range []int{3, 6, 10} {
		inst := AdderEquiv3(w)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestFactorPrimeUnsat(t *testing.T) {
	for _, p := range []uint64{7, 13, 31} {
		inst := Factor(p)
		checkUnsat(t, inst)
		checkMiterNontrivial(t, inst)
	}
}

func TestFactorCompositeSat(t *testing.T) {
	inst := Factor(15)
	st, _, model, _, err := solver.Solve(inst.F, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st != solver.Sat {
		t.Fatalf("factor_15: status %v, want SAT", st)
	}
	// Decode the factor inputs: variables 1..w are a, w+1..2w are b (the
	// constant node is variable 0, inputs follow in creation order).
	w := 4 // bitlen(15)
	read := func(base int) uint64 {
		var v uint64
		for i := 0; i < w; i++ {
			if model[base+i] {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	a, b := read(1), read(1+w)
	if a*b != 15 || a == 1 || b == 1 {
		t.Errorf("decoded factorization %d * %d", a, b)
	}
}

func TestPHP(t *testing.T) {
	for n := 2; n <= 4; n++ {
		checkUnsat(t, PHP(n))
	}
}

func TestXorChain(t *testing.T) {
	checkUnsat(t, XorChain(7))
	// Even n is silently made odd (even chains are satisfiable).
	inst := XorChain(8)
	if inst.Name != "xorchain_9" {
		t.Errorf("Name = %s", inst.Name)
	}
	checkUnsat(t, inst)
}

func TestRandUnsat(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		checkUnsat(t, RandUnsat(seed, 20))
	}
}

func TestRandUnsatDeterministic(t *testing.T) {
	a := RandUnsat(42, 15)
	b := RandUnsat(42, 15)
	if a.F.NumClauses() != b.F.NumClauses() {
		t.Fatal("different clause counts")
	}
	for i := range a.F.Clauses {
		if !a.F.Clauses[i].Equal(b.F.Clauses[i]) {
			t.Fatalf("clause %d differs", i)
		}
	}
}

func TestInstanceNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, inst := range []Instance{
		AdderEquiv(4), AluEquiv(4), Pipe(2, 4), Barrel(4, 2),
		Longmult(4, 2), Fifo(4, 4), Counter(4, 6), Control(4, 2),
		PHP(3), XorChain(5), RandUnsat(1, 10),
	} {
		if names[inst.Name] {
			t.Errorf("duplicate name %s", inst.Name)
		}
		names[inst.Name] = true
		if inst.Family == "" {
			t.Errorf("%s: empty family", inst.Name)
		}
		if inst.F.NumClauses() == 0 {
			t.Errorf("%s: empty formula", inst.Name)
		}
	}
}

// TestFamiliesScale sanity-checks that the size knobs actually grow the
// formulas (Table 3 depends on this for the fifo family).
func TestFamiliesScale(t *testing.T) {
	if Fifo(4, 10).F.NumClauses() <= Fifo(4, 5).F.NumClauses() {
		t.Error("fifo does not grow with cycles")
	}
	if Barrel(8, 3).F.NumClauses() <= Barrel(8, 1).F.NumClauses() {
		t.Error("barrel does not grow with steps")
	}
	if Counter(6, 20).F.NumClauses() <= Counter(6, 5).F.NumClauses() {
		t.Error("counter does not grow with k")
	}
	if Pipe(4, 4).F.NumClauses() <= Pipe(1, 4).F.NumClauses() {
		t.Error("pipe does not grow with stages")
	}
}
