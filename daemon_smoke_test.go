package repro

// Kill-and-recover smoke for the verification daemon: SIGKILL dpvd (via its
// crash-fault hook) with several jobs in flight, restart it on the same
// store, and require every job to finish with a verdict byte-identical to
// an uninterrupted checkpointed dpv run — then drain cleanly on SIGTERM.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemonCmds compiles dpv (the reference) and dpvd into a temp dir.
func buildDaemonCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/dpv", "./cmd/dpvd")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building binaries: %v\n%s", err, out)
	}
	return dir
}

func startDaemon(t *testing.T, bin, addr, store string, crashEnv string) (*exec.Cmd, chan struct{}) {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr, "-store", store, "-workers", "2", "-checkpoint-every", "100", "-q")
	cmd.Env = os.Environ()
	if crashEnv != "" {
		cmd.Env = append(cmd.Env, "DPV_FAULT_CRASH_AFTER_APPENDS="+crashEnv)
	}
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }()
	return cmd, done
}

// waitServing polls /healthz until the daemon answers, it exits, or the
// deadline passes.
func waitServing(addr string, done chan struct{}) bool {
	client := &http.Client{Timeout: 500 * time.Millisecond}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case <-done:
			return false
		default:
		}
		resp, err := client.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return true
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func submitJob(addr string, formula, trace []byte) (string, error) {
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("formula", "chain.cnf")
	if err != nil {
		return "", err
	}
	fw.Write(formula)
	pw, err := mw.CreateFormFile("proof", "chain.trace")
	if err != nil {
		return "", err
	}
	pw.Write(trace)
	mw.Close()

	resp, err := http.Post("http://"+addr+"/v1/jobs", mw.FormDataContentType(), &buf)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d %s", resp.StatusCode, body)
	}
	var sr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

// jobStatus fetches one job, returning its state, result status and the raw
// verdict JSON (for byte comparison against dpv -json output).
func jobStatus(addr, id string) (state, status string, verdict []byte, err error) {
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + id)
	if err != nil {
		return "", "", nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", "", nil, fmt.Errorf("status %s: %d %s", id, resp.StatusCode, body)
	}
	var sr struct {
		State  string `json:"state"`
		Result *struct {
			Status  string          `json:"status"`
			Verdict json.RawMessage `json:"verdict"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		return "", "", nil, err
	}
	if sr.Result == nil {
		return sr.State, "", nil, nil
	}
	return sr.State, sr.Result.Status, sr.Result.Verdict, nil
}

func TestDaemonKillAndRecover(t *testing.T) {
	const nJobs = 5
	bins := buildDaemonCmds(t)
	dir := t.TempDir()
	cnfPath, tracePath, _ := writeChainFixtures(t, dir, 2000)
	formula, err := os.ReadFile(cnfPath)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an uninterrupted dpv run with the same checkpoint grid the
	// daemon uses. Resumed runs are byte-identical to checkpointed — not
	// plain — runs, because checkpointing rebuilds the engine at epoch
	// boundaries (see internal/core/checkpoint.go).
	refJournal := filepath.Join(dir, "ref.dpvj")
	code, refOut := runWithEnv(t, nil, filepath.Join(bins, "dpv"),
		"-json", "-q", "-checkpoint", refJournal, "-checkpoint-every", "100", cnfPath, tracePath)
	if code != 0 {
		t.Fatalf("reference dpv exited %d", code)
	}
	refVerdict := strings.TrimSpace(refOut)
	if !strings.Contains(refVerdict, `"verified"`) {
		t.Fatalf("reference verdict %q not verified", refVerdict)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	store := filepath.Join(dir, "store")
	dpvd := filepath.Join(bins, "dpvd")

	// Crash rounds: the fault hook SIGKILLs the daemon after 15 durable
	// journal appends, and each 2000-clause job needs 20 — so the first
	// incarnation cannot finish anything before it dies. Keep restarting
	// (still under the fault) until all jobs are submitted; every round
	// makes checkpoint progress, so this terminates.
	var ids []string
	firstKill := true
	for round := 0; len(ids) < nJobs; round++ {
		if round >= 40 {
			t.Fatalf("submitted only %d/%d jobs after %d crash rounds", len(ids), nJobs, round)
		}
		cmd, done := startDaemon(t, dpvd, addr, store, "15")
		if waitServing(addr, done) {
			for len(ids) < nJobs {
				id, err := submitJob(addr, formula, trace)
				if err != nil {
					t.Logf("round %d: submit after %d jobs: %v (daemon crashed, restarting)", round, len(ids), err)
					break
				}
				ids = append(ids, id)
			}
		}
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			cmd.Process.Kill()
			t.Fatal("daemon did not crash under fault injection")
		}
		if ec := cmd.ProcessState.ExitCode(); ec != -1 {
			t.Fatalf("round %d: daemon exited %d, want SIGKILL (-1)", round, ec)
		}
		if firstKill && len(ids) > 0 {
			firstKill = false
			inflight := 0
			for _, id := range ids {
				if _, err := os.Stat(filepath.Join(store, "jobs", id, "result.json")); err != nil {
					inflight++
				}
			}
			if inflight < 4 {
				t.Fatalf("only %d jobs in flight at first kill, want >= 4", inflight)
			}
		}
	}

	// Clean restart: recovery must finish every job.
	cmd, done := startDaemon(t, dpvd, addr, store, "")
	if !waitServing(addr, done) {
		t.Fatal("recovered daemon never became healthy")
	}
	deadline := time.Now().Add(120 * time.Second)
	for _, id := range ids {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish after recovery", id)
			}
			state, status, verdict, err := jobStatus(addr, id)
			if err != nil {
				t.Fatal(err)
			}
			if state == "done" {
				if status != "verified" {
					t.Fatalf("job %s recovered as %q, want verified", id, status)
				}
				if string(verdict) != refVerdict {
					t.Fatalf("job %s verdict differs from uninterrupted dpv:\n got %s\nwant %s",
						id, verdict, refVerdict)
				}
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// The unsat core of the chain is the whole formula; the core endpoint
	// must serve exactly the DIMACS bytes dpv would write.
	resp, err := http.Get("http://" + addr + "/v1/jobs/" + ids[0] + "/core")
	if err != nil {
		t.Fatal(err)
	}
	coreBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(coreBytes, formula) {
		t.Fatalf("core endpoint: %d, %d bytes, want 200 with the %d-byte formula",
			resp.StatusCode, len(coreBytes), len(formula))
	}

	// Graceful drain: SIGTERM exits 0 after flushing in-flight state.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not drain on SIGTERM")
	}
	if ec := cmd.ProcessState.ExitCode(); ec != 0 {
		t.Fatalf("drained daemon exited %d, want 0", ec)
	}
}
