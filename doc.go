// Package repro reproduces "Verification of Proofs of Unsatisfiability for
// CNF Formulas" (E. Goldberg, Y. Novikov, DATE 2003): a CDCL SAT solver
// that logs conflict-clause proofs, an independent BCP-based proof verifier
// with unsatisfiable-core extraction, a resolution-graph proof baseline,
// benchmark generators and the harness regenerating the paper's Tables 1-3.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// EXPERIMENTS.md for measured-vs-paper results. The root-level
// bench_test.go holds one benchmark group per table/figure.
package repro
