package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// Parallel-schedule smoke: the same proof driven through dpv sequentially,
// with the fixed-chunk split, and with the work-stealing DAG schedule. The
// verdict line must agree everywhere, and because the DAG schedule honors
// the marking walk and records hints, its core and LRAT artifacts must be
// byte-identical to the sequential run's — the chunked mode cannot produce
// them at all.
func TestParSmoke(t *testing.T) {
	bins := buildCmds(t)
	fixtures := t.TempDir()
	const n = 1500
	cnfPath, tracePath, _ := writeChainFixtures(t, fixtures, n)
	dpv := filepath.Join(bins, "dpv")
	lratcheck := filepath.Join(bins, "lratcheck")
	dir := t.TempDir()

	artifacts := func(tag string, extra ...string) []string {
		args := append([]string{}, extra...)
		args = append(args, "-core", filepath.Join(dir, tag+".core"),
			"-emit-lrat", filepath.Join(dir, tag+".lrat"))
		return append(args, cnfPath, tracePath)
	}

	code, seqOut := runWithEnv(t, nil, dpv, artifacts("seq")...)
	if code != 0 {
		t.Fatalf("sequential exit %d:\n%s", code, seqOut)
	}
	code, dagOut := runWithEnv(t, nil, dpv, artifacts("dag", "-par", "4", "-sched", "dag")...)
	if code != 0 {
		t.Fatalf("dag exit %d:\n%s", code, dagOut)
	}
	if dagOut != seqOut {
		t.Errorf("dag stdout diverged from sequential:\n got %q\nwant %q", dagOut, seqOut)
	}
	for _, ext := range []string{".core", ".lrat"} {
		seq, err := os.ReadFile(filepath.Join(dir, "seq"+ext))
		if err != nil {
			t.Fatal(err)
		}
		dag, err := os.ReadFile(filepath.Join(dir, "dag"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seq, dag) {
			t.Errorf("dag %s artifact is not byte-identical to the sequential one", ext)
		}
	}

	// The chunked schedule reaches the same verdict (its report differs:
	// check-all counters, no core line).
	code, chunkOut := runWithEnv(t, nil, dpv, "-par", "4", "-sched", "chunk", cnfPath, tracePath)
	if code != 0 {
		t.Fatalf("chunk exit %d:\n%s", code, chunkOut)
	}
	const verdict = "s PROOF VERIFIED\n"
	if !bytes.HasPrefix([]byte(chunkOut), []byte(verdict)) || !bytes.HasPrefix([]byte(seqOut), []byte(verdict)) {
		t.Fatalf("verdict lines diverged:\nchunk %q\nseq %q", chunkOut, seqOut)
	}

	// The recorded proof replays under both lratcheck schedules.
	for _, sched := range []string{"chunk", "dag"} {
		code, out := runWithEnv(t, nil, lratcheck,
			"-q", "-par", strconv.Itoa(4), "-sched", sched, cnfPath, filepath.Join(dir, "dag.lrat"))
		if code != 0 {
			t.Errorf("lratcheck -sched %s rejected the emitted proof (exit %d):\n%s", sched, code, out)
		}
	}
}
