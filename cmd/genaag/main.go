// Command genaag emits reference combinational circuits in ASCII AIGER
// (aag) format — companions for aigmiter. Functionally equal architectures
// miter to UNSAT CNFs; different functions miter to SAT.
//
// Usage:
//
//	genaag -arch ripple|carrysel|koggestone|mulshift|muldiag -w WIDTH [-o FILE]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
)

func main() {
	os.Exit(run())
}

func run() int {
	arch := flag.String("arch", "ripple", "architecture: ripple | carrysel | koggestone | mulshift | muldiag")
	width := flag.Int("w", 8, "operand width in bits")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	c := circuit.New()
	a := c.InputWord(*width)
	b := c.InputWord(*width)
	var sum circuit.Word
	var carry circuit.Signal
	switch *arch {
	case "ripple":
		cin := c.Input()
		sum, carry = c.RippleAdd(a, b, cin)
		sum = append(sum, carry)
	case "carrysel":
		cin := c.Input()
		sum, carry = c.CarrySelectAdd(a, b, cin)
		sum = append(sum, carry)
	case "koggestone":
		cin := c.Input()
		sum, carry = c.KoggeStoneAdd(a, b, cin)
		sum = append(sum, carry)
	case "mulshift":
		sum = c.MulShiftAdd(a, b)
	case "muldiag":
		sum = c.MulDiagonal(a, b)
	default:
		fmt.Fprintf(os.Stderr, "genaag: unknown architecture %q\n", *arch)
		return 1
	}
	for _, s := range sum {
		c.Output(s)
	}

	aig, _, err := c.LowerToAIG()
	if err != nil {
		fmt.Fprintln(os.Stderr, "genaag:", err)
		return 1
	}
	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "genaag:", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	if err := aig.WriteAAG(w); err != nil {
		fmt.Fprintln(os.Stderr, "genaag:", err)
		return 1
	}
	return 0
}
