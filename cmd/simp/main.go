// Command simp preprocesses a DIMACS CNF: root-level unit propagation,
// failed-literal probing, subsumption, self-subsuming resolution and
// NiVER-style bounded variable elimination.
//
// Usage:
//
//	simp [flags] in.cnf [out.cnf]
//
// With no output file, the simplified formula goes to stdout. Statistics go
// to stderr. Note that proofs produced for the simplified formula verify
// against the simplified formula (see package simplify's doc).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cnf"
	"repro/internal/simplify"
)

func main() {
	os.Exit(run())
}

func run() int {
	noVE := flag.Bool("no-ve", false, "disable bounded variable elimination")
	noBCE := flag.Bool("no-bce", false, "disable blocked clause elimination")
	noSub := flag.Bool("no-sub", false, "disable subsumption")
	noSelf := flag.Bool("no-self", false, "disable self-subsuming resolution")
	noProbe := flag.Bool("no-probe", false, "disable failed-literal probing")
	rounds := flag.Int("rounds", 3, "fixpoint rounds")
	flag.Parse()

	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: simp [flags] in.cnf [out.cnf]")
		return 1
	}
	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "simp:", err)
		return 1
	}
	defer in.Close()
	f, err := cnf.ParseDimacs(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simp:", err)
		return 1
	}

	opt := simplify.Default()
	opt.VarElim = !*noVE
	opt.BlockedClause = !*noBCE
	opt.Subsumption = !*noSub
	opt.SelfSubsumption = !*noSelf
	opt.FailedLiterals = !*noProbe
	opt.Rounds = *rounds

	res, err := simplify.Simplify(f, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simp:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"c simp: %d -> %d clauses | units=%d probes=%d subsumed=%d strengthened=%d eliminated=%d blocked=%d rounds=%d unsat=%v\n",
		f.NumClauses(), res.F.NumClauses(), res.Stats.UnitsPropagated, res.Stats.FailedLiterals,
		res.Stats.ClausesSubsumed, res.Stats.LitsStrengthened, res.Stats.VarsEliminated,
		res.Stats.BlockedRemoved, res.Stats.Rounds, res.Unsat)

	out := os.Stdout
	if flag.NArg() == 2 {
		file, err := os.Create(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simp:", err)
			return 1
		}
		defer file.Close()
		out = file
	}
	if err := cnf.WriteDimacs(out, res.F); err != nil {
		fmt.Fprintln(os.Stderr, "simp:", err)
		return 1
	}
	return 0
}
