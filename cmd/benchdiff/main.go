// Command benchdiff is the perf-regression gate: it compares a fresh BCP
// benchmark report (bcpbench output) against a committed baseline and fails
// when a gated metric degraded beyond tolerance.
//
// Usage:
//
//	benchdiff [-tol 0.15] baseline.json fresh.json
//	benchdiff -lrat [-tol 0.15] BENCH_lrat.json fresh.json
//	benchdiff -par [-tol 0.15] BENCH_par.json fresh.json
//
// Deterministic per-check work (watcher visits/check, occurrence
// touches/check) is gated per instance and engine at -tol; wall-clock
// throughput (props/sec) is gated only on the suite aggregate, at twice
// -tol, and only when the aggregate clears a wall-time noise floor — so
// timer noise cannot fail the gate. Only instances present in both reports
// are compared, which lets a quick smoke run be gated against the
// full-suite baseline; sharing no instances at all is an error, not a pass.
//
// With -lrat the inputs are hinted-proof benchmark reports (bcpbench -lrat
// output): hints scanned and addition steps are gated per instance, hinted
// check throughput (hints/sec) on the suite aggregate under the same
// noise-floor rules.
//
// With -par the inputs are parallel-schedule benchmark reports (parbench
// output): the hint DAG's shape (tasks, edges, costs, depth) is gated per
// instance, the chunk/DAG speedup and scheduled replay throughput on the
// suite aggregate under the same noise-floor rules.
//
// Exit status: 0 gate passed, 1 regressions found, 2 usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	tol := flag.Float64("tol", 0.15, "fractional regression tolerance (0.15 = 15%)")
	lratMode := flag.Bool("lrat", false, "diff hinted-proof benchmark reports (bcpbench -lrat output)")
	parMode := flag.Bool("par", false, "diff parallel-schedule benchmark reports (parbench output)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-lrat|-par] [-tol 0.15] baseline.json fresh.json")
		return 2
	}
	if *tol <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -tol must be positive")
		return 2
	}
	if *lratMode && *parMode {
		fmt.Fprintln(os.Stderr, "benchdiff: -lrat and -par are mutually exclusive")
		return 2
	}
	var regs []bench.Regression
	var compared int
	if *parMode {
		base, err := readParReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		fresh, err := readParReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		regs, compared = bench.DiffPar(base, fresh, *tol)
	} else if *lratMode {
		base, err := readLRATReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		fresh, err := readLRATReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		regs, compared = bench.DiffLRAT(base, fresh, *tol)
	} else {
		base, err := readReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		fresh, err := readReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			return 2
		}
		regs, compared = bench.DiffBCP(base, fresh, *tol)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: reports share no instances; gate is vacuous")
		return 2
	}
	if len(regs) > 0 {
		fmt.Printf("FAIL: %d of %d gated metrics regressed beyond %.0f%%\n",
			len(regs), compared, 100**tol)
		for _, r := range regs {
			fmt.Println("  ", r.String())
		}
		return 1
	}
	fmt.Printf("ok: %d gated metrics within %.0f%% of baseline\n", compared, 100**tol)
	return 0
}

func readReport(path string) (*bench.BCPReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &bench.BCPReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Instances) == 0 {
		return nil, fmt.Errorf("%s: report holds no instances", path)
	}
	return rep, nil
}

func readParReport(path string) (*bench.ParReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &bench.ParReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Instances) == 0 {
		return nil, fmt.Errorf("%s: report holds no instances", path)
	}
	return rep, nil
}

func readLRATReport(path string) (*bench.LRATReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &bench.LRATReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Instances) == 0 {
		return nil, fmt.Errorf("%s: report holds no instances", path)
	}
	return rep, nil
}
