// Package ckpt holds checkpoint-journal glue shared by the checker CLIs:
// the fault-injection hook that turns a durable journal append into a
// deterministic crash point for the kill-and-recover harness.
package ckpt

import (
	"os"
	"strconv"
)

// EnvCrashAfterAppends names the environment hook used by the
// kill-and-recover fault harness: when set to a positive integer N, the
// process SIGKILLs itself immediately after the Nth durable checkpoint
// append. The record is already fsynced when the signal fires, so the crash
// lands exactly on the "record durable, everything after it lost" boundary
// — the same state a power cut mid-run leaves behind.
const EnvCrashAfterAppends = "DPV_FAULT_CRASH_AFTER_APPENDS"

// CrashSink wraps a checkpoint sink with the EnvCrashAfterAppends hook. With
// the variable unset (the normal case) the sink is returned unchanged.
func CrashSink(sink func([]byte) error) func([]byte) error {
	n, err := strconv.Atoi(os.Getenv(EnvCrashAfterAppends))
	if err != nil || n <= 0 {
		return sink
	}
	var appends int
	return func(p []byte) error {
		if err := sink(p); err != nil {
			return err
		}
		appends++
		if appends >= n {
			// A genuine SIGKILL: no deferred cleanup, no exit handlers — the
			// closest stand-in for a power cut a process can give itself.
			proc, _ := os.FindProcess(os.Getpid())
			proc.Kill()
			select {} // wait for the signal to land
		}
		return nil
	}
}
