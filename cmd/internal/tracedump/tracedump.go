// Package tracedump flushes a CLI run's flight recording to the requested
// output files. It is shared by the verifier front-ends (dpv, dratcheck) so
// the -trace-out/-trace-jsonl flags behave identically everywhere.
package tracedump

import (
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Write flushes the flight recording to the requested files. The registry's
// root span is ended first so the recording's outermost span is closed (End
// is idempotent — a root already ended elsewhere stays as it was). Files are
// written atomically; a ring overflow is reported on stderr under the given
// tool name.
func Write(tool, chromePath, jsonlPath string, reg *obs.Registry, rec *trace.Recorder) error {
	reg.Root().End()
	if chromePath != "" {
		err := atomicio.WriteFile(chromePath, func(w io.Writer) error {
			return trace.WriteChrome(w, rec)
		})
		if err != nil {
			return err
		}
	}
	if jsonlPath != "" {
		err := atomicio.WriteFile(jsonlPath, func(w io.Writer) error {
			return trace.WriteJSONL(w, rec)
		})
		if err != nil {
			return err
		}
	}
	if d := rec.Dropped(); d > 0 {
		fmt.Fprintf(os.Stderr, "c %s trace: ring overflow dropped %d events (raise -trace-buf)\n", tool, d)
	}
	return nil
}
