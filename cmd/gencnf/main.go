// Command gencnf emits benchmark instances from the generator families as
// DIMACS files.
//
// Usage:
//
//	gencnf -family NAME [-o FILE] [params...]
//
// Families and their parameters:
//
//	pipe     -a stages  -b width
//	control  -a width   -b rounds
//	barrel   -a bits    -b steps
//	longmult -a width   -b bit
//	addeq    -a width
//	addeq3   -a width
//	alueq    -a width
//	sorteq   -a lines
//	factor   -a n
//	fifo     -a depth   -b cycles
//	counter  -a width   -b steps
//	php      -a holes
//	xorchain -a length
//	rand     -a vars    -b seed
//
// With -list, prints the standard experiment suites and exits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cnf"
	"repro/internal/gen"
)

func main() {
	os.Exit(run())
}

func run() int {
	family := flag.String("family", "", "instance family (see doc)")
	a := flag.Int("a", 4, "first parameter")
	b := flag.Int("b", 4, "second parameter")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list the standard suites")
	flag.Parse()

	if *list {
		fmt.Println("# main suite (Tables 1 and 2)")
		for _, inst := range bench.SuiteMain() {
			s := inst.F.Stats()
			fmt.Printf("%-16s family=%-8s vars=%d clauses=%d\n", inst.Name, inst.Family, s.Vars, s.Clauses)
		}
		fmt.Println("# fifo suite (Table 3)")
		for _, inst := range bench.SuiteFifo() {
			s := inst.F.Stats()
			fmt.Printf("%-16s family=%-8s vars=%d clauses=%d\n", inst.Name, inst.Family, s.Vars, s.Clauses)
		}
		return 0
	}

	var inst gen.Instance
	switch *family {
	case "pipe":
		inst = gen.Pipe(*a, *b)
	case "control":
		inst = gen.Control(*a, *b)
	case "barrel":
		inst = gen.Barrel(*a, *b)
	case "longmult":
		inst = gen.Longmult(*a, *b)
	case "addeq":
		inst = gen.AdderEquiv(*a)
	case "addeq3":
		inst = gen.AdderEquiv3(*a)
	case "alueq":
		inst = gen.AluEquiv(*a)
	case "sorteq":
		inst = gen.SorterEquiv(*a)
	case "factor":
		inst = gen.Factor(uint64(*a))
	case "fifo":
		inst = gen.Fifo(*a, *b)
	case "counter":
		inst = gen.Counter(*a, *b)
	case "php":
		inst = gen.PHP(*a)
	case "xorchain":
		inst = gen.XorChain(*a)
	case "rand":
		inst = gen.RandUnsat(int64(*b), *a)
	default:
		fmt.Fprintf(os.Stderr, "gencnf: unknown family %q (use -list)\n", *family)
		return 1
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gencnf:", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	fmt.Fprintf(w, "c %s (family %s)\n", inst.Name, inst.Family)
	if err := cnf.WriteDimacs(w, inst.F); err != nil {
		fmt.Fprintln(os.Stderr, "gencnf:", err)
		return 1
	}
	return 0
}
