// Command bksat is the CDCL SAT solver CLI: it reads a DIMACS CNF, decides
// satisfiability, and (for UNSAT) streams the conflict-clause proof to a
// file the moment each clause is deduced — the workflow of the paper's §1:
// "as soon as the SAT-solver hits a conflict, the corresponding conflict
// clause is output to disk".
//
// Usage:
//
//	bksat [flags] formula.cnf
//
// Flags:
//
//	-proof FILE     write the conflict-clause proof trace (UNSAT only)
//	-learn SCHEME   1uip | decision | hybrid (default hybrid)
//	-heur NAME      berkmin | vsids (default berkmin)
//	-max-conflicts N  give up after N conflicts (0 = unlimited)
//	-timeout D      give up after this long (e.g. 30s, 5m; 0 = unlimited)
//	-seed N         perturb initial activities
//	-stats          print search statistics
//	-stats-json FILE  write a JSON snapshot of every metric and the span tree
//	-progress       report search progress (conflicts) on stderr
//	-progress-every N  progress line every N conflicts (default 10000)
//	-metrics ADDR   serve live metrics over HTTP (expvar-style JSON)
//
// Exit status: 10 for SAT (model printed as a "v" line), 20 for UNSAT,
// 0 for unknown — the conventional SAT-competition codes — plus
// 1 on usage errors, 3 on malformed/oversized input, 4 when -timeout
// expires, 6 on internal errors, and 130 on SIGINT/SIGTERM (search
// statistics for the partial run are reported before exiting).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/atomicio"
	"repro/internal/cnf"
	"repro/internal/drat"
	"repro/internal/exitcode"
	"repro/internal/obs"
	"repro/internal/proof"
	"repro/internal/simplify"
	"repro/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	proofPath := flag.String("proof", "", "write the conflict-clause proof to this file")
	dratPath := flag.String("drat", "", "write a deletion-aware DRUP proof to this file")
	learn := flag.String("learn", "hybrid", "learning scheme: 1uip | decision | hybrid")
	heur := flag.String("heur", "berkmin", "decision heuristic: berkmin | vsids")
	maxConflicts := flag.Int64("max-conflicts", 0, "conflict budget (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = unlimited)")
	seed := flag.Int64("seed", 0, "activity perturbation seed")
	stats := flag.Bool("stats", false, "print search statistics")
	statsJSON := flag.String("stats-json", "", "write a JSON metrics snapshot to this file")
	progress := flag.Bool("progress", false, "report search progress on stderr")
	progressEvery := flag.Int64("progress-every", 10000, "progress line every N conflicts")
	metricsAddr := flag.String("metrics", "", "serve live metrics over HTTP on this address")
	pprofFlag := flag.Bool("pprof", false, "with -metrics: also serve net/http/pprof under /debug/pprof/")
	simp := flag.Bool("simp", false, "preprocess before solving (NOTE: any proof then refers to the simplified formula)")
	portfolio := flag.Int("portfolio", 0, "race N diversified solver configurations; the winner's proof is written at the end (streaming and -drat are unavailable in this mode)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bksat [flags] formula.cnf")
		return exitcode.Usage
	}

	// Context: an optional deadline, and SIGINT or SIGTERM cancels so a ^C
	// (or a supervisor's polite kill) mid-search still reports statistics
	// for the partial run before exiting 130.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The registry exists whenever any observability surface is requested;
	// nil otherwise, which turns every instrument call into a nil check.
	var reg *obs.Registry
	if *statsJSON != "" || *metricsAddr != "" || *progress {
		reg = obs.New()
	}
	if *metricsAddr != "" {
		addr, shutdown, serr := obs.Serve(ctx, *metricsAddr, reg, *pprofFlag)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "bksat:", serr)
			return exitcode.Internal
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "c metrics: http://%v/debug/vars (Prometheus at /metrics)\n", addr)
	}

	parseSpan := reg.StartSpan("parse-formula")
	in, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bksat:", err)
		return exitcode.BadInput
	}
	defer in.Close()
	f, err := cnf.ParseDimacs(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bksat:", err)
		return exitcode.BadInput
	}
	parseSpan.End()

	var pre *simplify.Result
	if *simp {
		pre, err = simplify.Simplify(f, simplify.Default())
		if err != nil {
			fmt.Fprintln(os.Stderr, "bksat:", err)
			return exitcode.Internal
		}
		fmt.Fprintf(os.Stderr, "c simp: %d -> %d clauses\n", f.NumClauses(), pre.F.NumClauses())
		f = pre.F
	}

	opts := solver.Options{MaxConflicts: *maxConflicts, Seed: *seed, Obs: reg, Ctx: ctx}
	var prog *obs.Progress
	if *progress {
		learned := reg.Counter("solver.learned")
		restarts := reg.Counter("solver.restarts")
		prog = obs.NewProgress(os.Stderr, obs.ProgressConfig{
			Label: "solve",
			Unit:  "conflicts",
			Every: *progressEvery,
			Aux: func() string {
				return fmt.Sprintf("learned=%d restarts=%d", learned.Value(), restarts.Value())
			},
		})
		opts.Progress = prog
	}
	switch *learn {
	case "1uip":
		opts.Learn = solver.Learn1UIP
	case "decision":
		opts.Learn = solver.LearnDecision
	case "hybrid":
		opts.Learn = solver.LearnHybrid
	default:
		fmt.Fprintf(os.Stderr, "bksat: unknown learning scheme %q\n", *learn)
		return exitcode.Usage
	}
	switch *heur {
	case "berkmin":
		opts.Heuristic = solver.HeurBerkMin
	case "vsids":
		opts.Heuristic = solver.HeurVSIDS
	default:
		fmt.Fprintf(os.Stderr, "bksat: unknown heuristic %q\n", *heur)
		return exitcode.Usage
	}

	var proofFile *atomicio.File
	var rec *drat.Recorder
	var st solver.Status
	var tr *proof.Trace
	var model []bool
	var sstats solver.Stats
	if *portfolio > 0 {
		if *dratPath != "" {
			fmt.Fprintln(os.Stderr, "bksat: -drat is unavailable with -portfolio")
			return exitcode.Usage
		}
		configs := make([]solver.Options, *portfolio)
		for i := range configs {
			configs[i] = opts
			configs[i].Learn = []solver.LearnScheme{
				solver.LearnHybrid, solver.Learn1UIP, solver.LearnDecision,
			}[i%3]
		}
		solveSpan := reg.StartSpan("solve")
		res, perr := solver.Portfolio(f, configs)
		solveSpan.End()
		if perr != nil {
			fmt.Fprintln(os.Stderr, "bksat:", perr)
			return exitcode.Internal
		}
		st, tr, model, sstats = res.Status, res.Trace, res.Model, res.Stats
		fmt.Fprintf(os.Stderr, "c portfolio: configuration %d won\n", res.Winner)
		if *proofPath != "" && st == solver.Unsat {
			werr := atomicio.WriteFile(*proofPath, func(out io.Writer) error {
				w := out
				if reg != nil {
					w = obs.CountingWriter(out, reg.Counter("proof.write.bytes"))
				}
				return proof.Write(w, tr)
			})
			if werr != nil {
				fmt.Fprintln(os.Stderr, "bksat:", werr)
				return exitcode.Internal
			}
		}
	} else {
		if *proofPath != "" {
			proofFile, err = atomicio.Create(*proofPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bksat:", err)
				return exitcode.Internal
			}
			// Closed uncommitted (and hence discarded) on every path except a
			// completed UNSAT run, which commits it below.
			defer proofFile.Close()
			if reg != nil {
				opts.ProofWriter = obs.CountingWriter(proofFile, reg.Counter("proof.write.bytes"))
			} else {
				opts.ProofWriter = proofFile
			}
		}
		if *dratPath != "" {
			rec = drat.NewRecorder()
			opts.OnLearn = rec.Learn
			opts.OnDelete = rec.Delete
		}
		solveSpan := reg.StartSpan("solve")
		st, tr, model, sstats, err = solver.Solve(f, opts)
		solveSpan.End()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bksat:", err)
			return exitcode.Internal
		}
	}
	prog.Finish()
	if *statsJSON != "" {
		if serr := atomicio.WriteFile(*statsJSON, reg.WriteJSON); serr != nil {
			fmt.Fprintln(os.Stderr, "bksat:", serr)
			return exitcode.Internal
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "c conflicts=%d decisions=%d propagations=%d restarts=%d learned=%d deleted=%d resolutions=%d\n",
			sstats.Conflicts, sstats.Decisions, sstats.Propagations, sstats.Restarts,
			sstats.Learned, sstats.Deleted, sstats.Resolutions)
	}

	switch st {
	case solver.Sat:
		fmt.Println("s SATISFIABLE")
		if pre != nil {
			model, err = pre.ExtendModel(model)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bksat:", err)
				return exitcode.Internal
			}
		}
		fmt.Print("v ")
		for v, val := range model {
			l := cnf.PosLit(cnf.Var(v))
			if !val {
				l = l.Neg()
			}
			fmt.Print(l.Dimacs(), " ")
		}
		fmt.Println("0")
		return 10
	case solver.Unsat:
		fmt.Println("s UNSATISFIABLE")
		if proofFile != nil {
			if err := proofFile.Commit(); err != nil {
				fmt.Fprintln(os.Stderr, "bksat:", err)
				return exitcode.Internal
			}
			fmt.Fprintf(os.Stderr, "c proof: %d conflict clauses, %d literals, termination: %v -> %s\n",
				tr.Len(), tr.NumLiterals(), tr.Terminates(), *proofPath)
		}
		if rec != nil {
			if err := atomicio.WriteFile(*dratPath, func(out io.Writer) error {
				return drat.Write(out, rec.Proof())
			}); err != nil {
				fmt.Fprintln(os.Stderr, "bksat:", err)
				return exitcode.Internal
			}
			fmt.Fprintf(os.Stderr, "c drat: %d additions, %d deletions -> %s\n",
				rec.Proof().Additions(), rec.Proof().Deletions(), *dratPath)
		}
		return 20
	default:
		fmt.Println("s UNKNOWN")
		switch {
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			fmt.Fprintln(os.Stderr, "c stopped: -timeout expired")
			return exitcode.Timeout
		case ctx.Err() != nil:
			fmt.Fprintln(os.Stderr, "c stopped: interrupted")
			return exitcode.Interrupted
		}
		return 0
	}
}
