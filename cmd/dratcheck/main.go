// Command dratcheck verifies a deletion-aware DRUP proof (as produced by
// bksat -drat, or by any solver emitting the standard text format) against
// its CNF formula by forward reverse-unit-propagation.
//
// Usage:
//
//	dratcheck formula.cnf proof.drat
//
// Exit status: 0 verified, 2 rejected, 1 on IO/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cnf"
	"repro/internal/drat"
)

func main() {
	os.Exit(run())
}

func run() int {
	quiet := flag.Bool("q", false, "quiet")
	backward := flag.Bool("backward", false, "backward checking with marking (drat-trim style; checks only used clauses)")
	trimPath := flag.String("trim", "", "with -backward: write the trimmed proof to this file")
	corePath := flag.String("core", "", "with -backward: write the unsat core (DIMACS) to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dratcheck [-q] [-backward [-trim out.drat] [-core out.cnf]] formula.cnf proof.drat")
		return 1
	}
	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return 1
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return 1
	}
	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return 1
	}
	defer pin.Close()
	p, err := drat.Read(pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return 1
	}

	var res *drat.Result
	if *backward {
		var trimmed *drat.Proof
		var coreIdx []int
		res, trimmed, coreIdx, err = drat.VerifyBackward(f, p)
		if err == nil && res.OK {
			if *trimPath != "" {
				out, ferr := os.Create(*trimPath)
				if ferr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", ferr)
					return 1
				}
				defer out.Close()
				if werr := drat.Write(out, trimmed); werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return 1
				}
			}
			if *corePath != "" {
				out, ferr := os.Create(*corePath)
				if ferr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", ferr)
					return 1
				}
				defer out.Close()
				if werr := cnf.WriteDimacs(out, f.Restrict(coreIdx)); werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return 1
				}
			}
			if !*quiet {
				fmt.Printf("c trimmed: %d of %d additions kept; core: %d of %d clauses\n",
					trimmed.Additions(), res.Additions, len(coreIdx), f.NumClauses())
			}
		}
	} else {
		res, err = drat.Verify(f, p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return 1
	}
	if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc step %d: %s\n", res.FailedStep, res.Reason)
		return 2
	}
	if !*quiet {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c additions=%d deletions=%d tautologies=%d rat=%d propagations=%d\n",
			res.Additions, res.Deletions, res.Tautologies, res.RATChecks, res.Propagations)
	}
	return 0
}
