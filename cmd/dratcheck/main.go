// Command dratcheck verifies a deletion-aware DRUP proof (as produced by
// bksat -drat, or by any solver emitting the standard text format) against
// its CNF formula by forward reverse-unit-propagation.
//
// Usage:
//
//	dratcheck formula.cnf proof.drat
//
// With -backward -checkpoint FILE the backward pass writes resumable
// checkpoints every -checkpoint-every steps; -resume restarts from the
// journal's last durable record, falling back to a full run on any
// mismatch or corruption.
//
// With -backward -emit-lrat FILE a verified proof is also written out in
// LRAT form — each kept step annotated with the resolution hints that make
// it checkable by unit replay alone (see cmd/lratcheck). -lrat-binary
// selects the compact binary encoding.
//
// Observability: -stats-json FILE writes a JSON snapshot of every metric
// and the span tree; -trace-out FILE records the run as Chrome trace-event
// JSON (loadable in ui.perfetto.dev), -trace-jsonl FILE as a JSONL event
// dump, with -trace-buf N sizing the flight recorder's per-track ring.
//
// Exit status: 0 verified, 1 usage errors, 2 rejected, 3 malformed or
// unreadable formula/proof input, 4 when -timeout expires, 6 internal
// errors (failed output writes), 130 on SIGINT/SIGTERM (with -backward the
// partial progress is reported and, when checkpointing, a final journal
// record is flushed so -resume can pick up where the run stopped).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/cmd/internal/ckpt"
	"repro/cmd/internal/tracedump"
	"repro/internal/atomicio"
	"repro/internal/cnf"
	"repro/internal/drat"
	"repro/internal/exitcode"
	"repro/internal/journal"
	"repro/internal/lrat"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	quiet := flag.Bool("q", false, "quiet")
	backward := flag.Bool("backward", false, "backward checking with marking (drat-trim style; checks only used clauses)")
	trimPath := flag.String("trim", "", "with -backward: write the trimmed proof to this file")
	corePath := flag.String("core", "", "with -backward: write the unsat core (DIMACS) to this file")
	checkpointPath := flag.String("checkpoint", "", "with -backward: write resumable checkpoints to this journal file")
	checkpointEvery := flag.Int("checkpoint-every", 1000, "checkpoint interval in proof steps")
	resume := flag.Bool("resume", false, "resume from the -checkpoint journal when it matches")
	timeout := flag.Duration("timeout", 0, "with -backward: give up after this long (0 = unlimited)")
	lratPath := flag.String("emit-lrat", "", "with -backward: write an LRAT proof with resolution hints to this file")
	lratBinary := flag.Bool("lrat-binary", false, "with -emit-lrat: write the compact binary LRAT encoding")
	statsJSON := flag.String("stats-json", "", "write a JSON metrics snapshot to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON flight recording to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the flight recording as JSONL to this file")
	traceBuf := flag.Int("trace-buf", trace.DefaultTrackEvents, "flight recorder ring capacity per track")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dratcheck [-q] [-backward [-trim out.drat] [-core out.cnf] [-checkpoint j [-resume]]] [-stats-json f] [-trace-out f] [-trace-jsonl f] formula.cnf proof.drat")
		return exitcode.Usage
	}
	if (*checkpointPath != "" || *resume) && !*backward {
		fmt.Fprintln(os.Stderr, "dratcheck: -checkpoint/-resume require -backward")
		return exitcode.Usage
	}
	if *resume && *checkpointPath == "" {
		fmt.Fprintln(os.Stderr, "dratcheck: -resume requires -checkpoint")
		return exitcode.Usage
	}
	if *checkpointPath != "" && *checkpointEvery <= 0 {
		fmt.Fprintln(os.Stderr, "dratcheck: -checkpoint-every must be positive")
		return exitcode.Usage
	}
	if *lratPath != "" && !*backward {
		fmt.Fprintln(os.Stderr, "dratcheck: -emit-lrat requires -backward (hints come from the backward pass)")
		return exitcode.Usage
	}
	if *lratBinary && *lratPath == "" {
		fmt.Fprintln(os.Stderr, "dratcheck: -lrat-binary requires -emit-lrat")
		return exitcode.Usage
	}

	// The registry exists whenever any observability surface is requested;
	// nil otherwise, which turns every instrument call into a nil check.
	// The flight recording is flushed on every exit path — a rejected
	// proof's recording is exactly the one worth reading.
	var reg *obs.Registry
	if *statsJSON != "" || *traceOut != "" || *traceJSONL != "" {
		reg = obs.New()
	}
	if *traceOut != "" || *traceJSONL != "" {
		rec := trace.New(*traceBuf)
		reg.SetTracer(rec)
		defer func() {
			if terr := tracedump.Write("dratcheck", *traceOut, *traceJSONL, reg, rec); terr != nil {
				fmt.Fprintln(os.Stderr, "dratcheck:", terr)
			}
		}()
	}

	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	defer pin.Close()
	p, err := drat.Read(pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}

	// Context: an optional deadline, and SIGINT or SIGTERM cancels so an
	// interrupted backward pass still reports how far it got (and flushes a
	// final journal record when checkpointing) before exiting 130.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	var res *drat.Result
	if *backward {
		bopt := drat.BackwardOptions{Obs: reg, Ctx: ctx}
		var hints *lrat.Recorder
		if *lratPath != "" {
			hints = new(lrat.Recorder)
			bopt.Hints = hints
		}
		var jw *journal.Writer
		if *checkpointPath != "" {
			meta := journal.Meta{
				Kind:      journal.KindDRATBackward,
				Interval:  uint32(*checkpointEvery),
				FormulaFP: journal.FingerprintFormula(f),
				ProofFP:   p.Fingerprint(),
			}
			var resumePayload []byte
			if *resume {
				payload, jerr := journal.Open(*checkpointPath, meta, reg)
				if jerr == nil {
					cp, derr := drat.DecodeBackwardCheckpoint(payload)
					if derr == nil && hints != nil && cp.Hints == nil {
						// The journal was written without -emit-lrat, so the
						// already-verified steps' hints are unrecoverable.
						derr = fmt.Errorf("journal predates -emit-lrat, hints unrecoverable")
					}
					if derr == nil {
						bopt.Resume = cp
						resumePayload = payload
					} else {
						jerr = derr
					}
				}
				if jerr != nil {
					fmt.Fprintf(os.Stderr, "dratcheck: warning: not resuming (%v); running from scratch\n", jerr)
				}
			}
			w, jerr := journal.Create(*checkpointPath, meta, reg)
			if jerr != nil {
				fmt.Fprintln(os.Stderr, "dratcheck:", jerr)
				return exitcode.Internal
			}
			jw = w
			defer jw.Close()
			if resumePayload != nil {
				if jerr := jw.Append(resumePayload); jerr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", jerr)
					return exitcode.Internal
				}
			}
			bopt.Every = *checkpointEvery
			bopt.Sink = ckpt.CrashSink(jw.Append)
		}
		var trimmed *drat.Proof
		var coreIdx []int
		res, trimmed, coreIdx, err = drat.VerifyBackwardOpts(f, p, bopt)
		if err != nil && res != nil && res.Incomplete {
			// The run was cut short (signal or deadline), not broken: dump
			// the partial progress, flush a final record so the journal
			// visibly ends with a clean stop, and exit per the contract.
			if jw != nil {
				note := fmt.Sprintf("incomplete stopped_at=%d err=%v", res.StoppedAt, err)
				if ferr := jw.AppendFinal([]byte(note)); ferr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", ferr)
				}
			}
			fmt.Fprintln(os.Stderr, "dratcheck:", err)
			fmt.Printf("s UNKNOWN\n")
			fmt.Printf("c incomplete: stopped before a verdict at step %d\n", res.StoppedAt)
			fmt.Printf("c additions=%d deletions=%d tautologies=%d propagations=%d\n",
				res.Additions, res.Deletions, res.Tautologies, res.Propagations)
			return exitcode.FromVerifyError(err)
		}
		if err == nil && jw != nil {
			// A verdict was reached; the journal is stale by definition.
			if rerr := jw.Remove(); rerr != nil {
				fmt.Fprintln(os.Stderr, "dratcheck:", rerr)
			}
		}
		if err == nil && res.OK {
			if *trimPath != "" {
				werr := atomicio.WriteFile(*trimPath, func(w io.Writer) error {
					return drat.Write(w, trimmed)
				})
				if werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return exitcode.Internal
				}
			}
			if *corePath != "" {
				werr := atomicio.WriteFile(*corePath, func(w io.Writer) error {
					return cnf.WriteDimacs(w, f.Restrict(coreIdx))
				})
				if werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return exitcode.Internal
				}
			}
			if hints != nil {
				werr := writeLRAT(*lratPath, hints, *lratBinary)
				if werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return exitcode.Internal
				}
			}
			if !*quiet {
				fmt.Printf("c trimmed: %d of %d additions kept; core: %d of %d clauses\n",
					trimmed.Additions(), res.Additions, len(coreIdx), f.NumClauses())
			}
		}
	} else {
		res, err = drat.Verify(f, p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	if *statsJSON != "" {
		if serr := atomicio.WriteFile(*statsJSON, reg.WriteJSON); serr != nil {
			fmt.Fprintln(os.Stderr, "dratcheck:", serr)
			return exitcode.Internal
		}
	}
	if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc step %d: %s\n", res.FailedStep, res.Reason)
		return exitcode.VerifyFailed
	}
	if !*quiet {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c additions=%d deletions=%d tautologies=%d rat=%d propagations=%d\n",
			res.Additions, res.Deletions, res.Tautologies, res.RATChecks, res.Propagations)
	}
	return exitcode.OK
}

// writeLRAT atomically writes the recorded hinted proof.
func writeLRAT(path string, rec *lrat.Recorder, binary bool) error {
	lp, err := rec.Proof()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if binary {
			return lrat.WriteBinary(w, lp)
		}
		return lrat.Write(w, lp)
	})
}
