// Command dratcheck verifies a deletion-aware DRUP proof (as produced by
// bksat -drat, or by any solver emitting the standard text format) against
// its CNF formula by forward reverse-unit-propagation.
//
// Usage:
//
//	dratcheck formula.cnf proof.drat
//
// Exit status: 0 verified, 1 usage errors, 2 rejected, 3 malformed or
// unreadable formula/proof input, 6 internal errors (failed output writes).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/cmd/internal/exitcode"
	"repro/internal/cnf"
	"repro/internal/drat"
)

func main() {
	os.Exit(run())
}

func run() int {
	quiet := flag.Bool("q", false, "quiet")
	backward := flag.Bool("backward", false, "backward checking with marking (drat-trim style; checks only used clauses)")
	trimPath := flag.String("trim", "", "with -backward: write the trimmed proof to this file")
	corePath := flag.String("core", "", "with -backward: write the unsat core (DIMACS) to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dratcheck [-q] [-backward [-trim out.drat] [-core out.cnf]] formula.cnf proof.drat")
		return exitcode.Usage
	}
	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	defer pin.Close()
	p, err := drat.Read(pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}

	var res *drat.Result
	if *backward {
		var trimmed *drat.Proof
		var coreIdx []int
		res, trimmed, coreIdx, err = drat.VerifyBackward(f, p)
		if err == nil && res.OK {
			if *trimPath != "" {
				out, ferr := os.Create(*trimPath)
				if ferr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", ferr)
					return exitcode.Internal
				}
				defer out.Close()
				if werr := drat.Write(out, trimmed); werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return exitcode.Internal
				}
			}
			if *corePath != "" {
				out, ferr := os.Create(*corePath)
				if ferr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", ferr)
					return exitcode.Internal
				}
				defer out.Close()
				if werr := cnf.WriteDimacs(out, f.Restrict(coreIdx)); werr != nil {
					fmt.Fprintln(os.Stderr, "dratcheck:", werr)
					return exitcode.Internal
				}
			}
			if !*quiet {
				fmt.Printf("c trimmed: %d of %d additions kept; core: %d of %d clauses\n",
					trimmed.Additions(), res.Additions, len(coreIdx), f.NumClauses())
			}
		}
	} else {
		res, err = drat.Verify(f, p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dratcheck:", err)
		return exitcode.BadInput
	}
	if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc step %d: %s\n", res.FailedStep, res.Reason)
		return exitcode.VerifyFailed
	}
	if !*quiet {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c additions=%d deletions=%d tautologies=%d rat=%d propagations=%d\n",
			res.Additions, res.Deletions, res.Tautologies, res.RATChecks, res.Propagations)
	}
	return exitcode.OK
}
