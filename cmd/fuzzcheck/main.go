// Command fuzzcheck is a differential fuzzer for the whole pipeline: it
// generates random CNF instances, solves each under every learning scheme,
// and cross-checks all the machinery against itself and against brute
// force:
//
//   - SAT answers must carry a model satisfying the formula;
//   - all schemes must agree on the status;
//   - every UNSAT proof must pass Proof_verification1 and 2, under both
//     BCP engines;
//   - the trimmed proof must verify again;
//   - with chains recorded, the resolution-graph proof must verify;
//   - small instances are additionally decided by brute force;
//   - the preprocessor must preserve the status, and its models must
//     extend to models of the original formula.
//
// Usage:
//
//	fuzzcheck [-n iterations] [-seed s] [-vars n] [-v]
//
// Exit status 0 when every iteration passes, 1 on the first discrepancy
// (with a reproducer seed printed).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/resolution"
	"repro/internal/simplify"
	"repro/internal/solver"
)

func main() {
	os.Exit(run())
}

func run() int {
	iters := flag.Int("n", 200, "iterations")
	seed := flag.Int64("seed", 1, "base seed")
	maxVars := flag.Int("vars", 12, "max variables per instance")
	verbose := flag.Bool("v", false, "per-iteration progress")
	flag.Parse()

	sat, unsat := 0, 0
	for i := 0; i < *iters; i++ {
		s := *seed + int64(i)
		if err := checkOne(s, *maxVars); err != nil {
			fmt.Fprintf(os.Stderr, "fuzzcheck: FAILED at seed %d: %v\n", s, err)
			return 1
		}
		st := lastStatus
		if st == solver.Sat {
			sat++
		} else {
			unsat++
		}
		if *verbose {
			fmt.Printf("seed %d: %v\n", s, st)
		}
	}
	fmt.Printf("fuzzcheck: %d iterations passed (%d sat, %d unsat)\n", *iters, sat, unsat)
	return 0
}

var lastStatus solver.Status

func checkOne(seed int64, maxVars int) error {
	rng := rand.New(rand.NewSource(seed))
	nVars := 3 + rng.Intn(maxVars-2)
	nClauses := nVars * (2 + rng.Intn(4))
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		k := 1 + rng.Intn(3)
		c := make(cnf.Clause, 0, k)
		for j := 0; j < k; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
		}
		f.AddClause(c)
	}

	var want solver.Status
	if nVars <= 16 {
		want = solver.Unsat
		if bruteSat(f) {
			want = solver.Sat
		}
	}

	var statuses []solver.Status
	for _, scheme := range []solver.LearnScheme{solver.Learn1UIP, solver.LearnDecision, solver.LearnHybrid} {
		s, err := solver.NewFromFormula(f, solver.Options{Learn: scheme, RecordChains: true, Seed: seed})
		if err != nil {
			return err
		}
		st := s.Run()
		statuses = append(statuses, st)
		switch st {
		case solver.Sat:
			if !f.Eval(s.Model()) {
				return fmt.Errorf("scheme %v: bogus model", scheme)
			}
		case solver.Unsat:
			tr := s.Trace()
			for _, mode := range []core.Mode{core.ModeCheckAll, core.ModeCheckMarked} {
				for _, eng := range []core.EngineKind{core.EngineWatched, core.EngineCounting} {
					res, err := core.Verify(f, tr, core.Options{Mode: mode, Engine: eng})
					if err != nil {
						return fmt.Errorf("scheme %v %v/%v: %v", scheme, mode, eng, err)
					}
					if !res.OK {
						return fmt.Errorf("scheme %v %v/%v: proof rejected at %d", scheme, mode, eng, res.FailedIndex)
					}
					if mode == core.ModeCheckMarked {
						trimmed, err := core.Trim(tr, res)
						if err != nil {
							return fmt.Errorf("trim: %v", err)
						}
						res2, err := core.Verify(f, trimmed, core.Options{Mode: core.ModeCheckAll})
						if err != nil || !res2.OK {
							return fmt.Errorf("trimmed proof rejected: %v", err)
						}
					}
				}
			}
			rp, err := resolution.FromSolverRun(f, tr, s.Chains())
			if err != nil {
				return fmt.Errorf("scheme %v: %v", scheme, err)
			}
			if err := rp.Verify(); err != nil {
				return fmt.Errorf("scheme %v: resolution proof: %v", scheme, err)
			}
		default:
			return fmt.Errorf("scheme %v: unexpected status %v", scheme, st)
		}
	}
	for _, st := range statuses[1:] {
		if st != statuses[0] {
			return fmt.Errorf("schemes disagree: %v", statuses)
		}
	}
	if want == solver.Sat || want == solver.Unsat {
		if statuses[0] != want {
			return fmt.Errorf("brute force says %v, solver says %v", want, statuses[0])
		}
	}

	// Preprocessor must preserve the status; SAT models must extend.
	res, err := simplify.Simplify(f, simplify.Default())
	if err != nil {
		return err
	}
	st2, _, model, _, err := solver.Solve(res.F, solver.Options{})
	if err != nil {
		return err
	}
	if res.Unsat {
		st2 = solver.Unsat
	}
	if st2 != statuses[0] {
		return fmt.Errorf("preprocessing changed status: %v -> %v", statuses[0], st2)
	}
	if st2 == solver.Sat {
		full, err := res.ExtendModel(model)
		if err != nil {
			return err
		}
		if !f.Eval(full) {
			return fmt.Errorf("extended model does not satisfy original formula")
		}
	}

	lastStatus = statuses[0]
	return nil
}

func bruteSat(f *cnf.Formula) bool {
	n := f.NumVars
	for m := 0; m < 1<<n; m++ {
		assign := make([]bool, n)
		for i := range assign {
			assign[i] = m&(1<<i) != 0
		}
		if f.Eval(assign) {
			return true
		}
	}
	return false
}
