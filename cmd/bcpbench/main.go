// Command bcpbench benchmarks the verifier's BCP engines against each other
// on the backward marked scan (pv2): the incremental root-trail watched
// engine vs the same engine rebuilt from scratch per check vs the naive
// counting propagator, over pigeonhole and random UNSAT instances with
// solver-recorded proofs. Results go to stdout as a table and to a JSON
// report (written atomically).
//
// Usage:
//
//	bcpbench                       # full suite, BENCH_bcp.json
//	bcpbench -quick -iters 2       # smoke run (make bench-smoke)
//	bcpbench -out path/to/report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "BENCH_bcp.json", "JSON report path")
	iters := flag.Int("iters", 3, "repetitions per engine; best wall time wins")
	quick := flag.Bool("quick", false, "small instances only (smoke run)")
	flag.Parse()

	rep, err := bench.BCPBench(bench.BCPSuite(*quick), *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpbench:", err)
		return 1
	}

	for _, inst := range rep.Instances {
		fmt.Printf("%s (vars=%d clauses=%d trace=%d)\n",
			inst.Name, inst.Vars, inst.Clauses, inst.TraceLen)
		for _, r := range inst.Rows {
			fmt.Printf("  %-16s %9.2fms  checked=%-6d props/s=%11.0f  visits/check=%10.1f\n",
				r.Engine, r.VerifyMillis, r.Checked, r.PropsPerSec, r.VisitsPerCheck)
		}
		fmt.Printf("  visit-reduction=%.2fx  speedup=%.2fx\n", inst.VisitReduction, inst.Speedup)
	}
	fmt.Printf("suite totals (watched-scratch vs watched): visit-reduction %.2fx, speedup %.2fx\n",
		rep.VisitReduction, rep.Speedup)

	err = atomicio.WriteFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpbench:", err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}
