// Command bcpbench benchmarks the verifier's BCP engines against each other
// on the backward marked scan (pv2): the incremental root-trail watched
// engine vs the same engine rebuilt from scratch per check vs the naive
// counting propagator, over pigeonhole and random UNSAT instances with
// solver-recorded proofs. Results go to stdout as a table and to a JSON
// report (written atomically).
//
// Usage:
//
//	bcpbench                       # full suite, BENCH_bcp.json
//	bcpbench -quick -iters 2       # smoke run (make bench-smoke)
//	bcpbench -out path/to/report.json
//	bcpbench -lrat                 # hinted-proof benchmark, BENCH_lrat.json
//	bcpbench -trace-overhead       # measure flight-recorder overhead instead
//
// -lrat runs the hinted-proof benchmark instead: each instance is verified
// once with the LRAT recorder attached, then full RUP re-verification is
// raced against the propagation-free hinted replay (lrat.Check). The
// report's headline speedup must stay above the 5x floor documented in
// DESIGN.md.
//
// -trace-overhead runs the watched engine with and without a flight
// recorder attached and reports the wall-clock overhead percentage; the
// budget documented in DESIGN.md is <3%. Exit status 1 when the measured
// overhead exceeds -overhead-budget (default 3%).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("out", "", "JSON report path (default BENCH_bcp.json, or BENCH_lrat.json with -lrat)")
	iters := flag.Int("iters", 3, "repetitions per engine; best wall time wins")
	quick := flag.Bool("quick", false, "small instances only (smoke run)")
	lratMode := flag.Bool("lrat", false, "run the hinted-proof benchmark (RUP re-verification vs lrat.Check)")
	overhead := flag.Bool("trace-overhead", false, "measure flight-recorder overhead instead of the engine benchmark")
	budget := flag.Float64("overhead-budget", 3.0, "with -trace-overhead: fail when overhead exceeds this percentage")
	flag.Parse()
	if *out == "" {
		if *lratMode {
			*out = "BENCH_lrat.json"
		} else {
			*out = "BENCH_bcp.json"
		}
	}

	if *overhead {
		orep, err := bench.TraceOverhead(bench.BCPSuite(*quick), *iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcpbench:", err)
			return 1
		}
		fmt.Printf("trace overhead: plain=%.2fms traced=%.2fms overhead=%+.2f%% (events=%d dropped=%d, budget %.1f%%)\n",
			orep.PlainMillis, orep.TracedMillis, orep.OverheadPct, orep.Events, orep.Dropped, *budget)
		if orep.OverheadPct > *budget {
			fmt.Println("FAIL: flight recorder exceeds its overhead budget")
			return 1
		}
		return 0
	}

	if *lratMode {
		return runLRAT(*quick, *iters, *out)
	}

	rep, err := bench.BCPBench(bench.BCPSuite(*quick), *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpbench:", err)
		return 1
	}

	for _, inst := range rep.Instances {
		fmt.Printf("%s (vars=%d clauses=%d trace=%d)\n",
			inst.Name, inst.Vars, inst.Clauses, inst.TraceLen)
		for _, r := range inst.Rows {
			fmt.Printf("  %-16s %9.2fms  checked=%-6d props/s=%11.0f  visits/check=%10.1f\n",
				r.Engine, r.VerifyMillis, r.Checked, r.PropsPerSec, r.VisitsPerCheck)
		}
		fmt.Printf("  visit-reduction=%.2fx  speedup=%.2fx\n", inst.VisitReduction, inst.Speedup)
	}
	fmt.Printf("suite totals (watched-scratch vs watched): visit-reduction %.2fx, speedup %.2fx\n",
		rep.VisitReduction, rep.Speedup)

	err = atomicio.WriteFile(*out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpbench:", err)
		return 1
	}
	fmt.Println("wrote", *out)
	return 0
}

func runLRAT(quick bool, iters int, out string) int {
	rep, err := bench.LRATBench(bench.BCPSuite(quick), iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpbench:", err)
		return 1
	}
	for _, ir := range rep.Instances {
		fmt.Printf("%s (vars=%d clauses=%d trace=%d)\n",
			ir.Name, ir.Vars, ir.Clauses, ir.TraceLen)
		fmt.Printf("  rup    %9.2fms\n", ir.RUPMillis)
		fmt.Printf("  hinted %9.2fms  additions=%-6d hints=%-8d hints/step=%5.1f  speedup=%.1fx\n",
			ir.HintedMillis, ir.Additions, ir.Hints, ir.HintsPerStep, ir.Speedup)
	}
	fmt.Printf("suite totals: rup %.2fms, hinted %.2fms, speedup %.1fx\n",
		rep.TotalRUPMillis, rep.TotalHintedMillis, rep.Speedup)

	err = atomicio.WriteFile(out, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bcpbench:", err)
		return 1
	}
	fmt.Println("wrote", out)
	return 0
}
