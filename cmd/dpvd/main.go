// Command dpvd runs the proof-verification service: a long-lived daemon
// that accepts formula+proof uploads over HTTP, verifies them with the
// paper's checker on a bounded worker pool, and serves verdicts, unsat
// cores and statistics — the CLI's exit-code contract turned into an API.
//
// Usage:
//
//	dpvd [flags]
//
// Flags:
//
//	-addr ADDR        listen address (default :8100)
//	-store DIR        disk-backed job store root; empty = in-memory only
//	                  (no crash recovery, no checkpoint journals)
//	-workers N        concurrent verification workers (default 2)
//	-queue N          admission queue capacity across tenants (default 64)
//	-tenant-queued N  per-tenant queued-job quota (default: queue capacity)
//	-tenant-running N per-tenant concurrency quota (default: workers)
//	-job-timeout D    per-job verification deadline (0 = unlimited)
//	-max-props N      per-job propagation budget (0 = unlimited)
//	-max-memory N     per-job estimated-memory budget in bytes (0 = unlimited)
//	-engine NAME      watched | counting | watched-scratch (default watched)
//	-all              check every proof clause (Proof_verification1)
//	-checkpoint-every N  journal interval in proof clauses (default 1000;
//	                  -1 disables checkpointing even with -store)
//	-max-upload N     upload body size cap in bytes (default 256 MiB)
//	-retry-after D    backpressure hint on 429/503 responses (default 2s)
//	-drain-timeout D  how long SIGTERM/SIGINT waits for in-flight jobs to
//	                  checkpoint and stop before exiting anyway (default 30s)
//	-pprof            serve net/http/pprof under /debug/pprof/
//	-q                quiet: suppress operational log lines
//
// API: POST /v1/jobs (multipart parts "formula", "proof"; optional
// X-Dpv-Tenant header) returns 202 with a job ID; GET /v1/jobs/{id} the
// state and result; GET /v1/jobs/{id}/core the unsat core as DIMACS.
// /metrics, /debug/vars, /healthz and /readyz serve observability. A full
// queue answers 429 with Retry-After; a draining daemon answers 503.
//
// Fault model: SIGTERM/SIGINT drain gracefully (in-flight jobs flush a
// final checkpoint record; queued jobs stay durable for the next start).
// After a SIGKILL or power cut, restarting with the same -store recovers
// every unfinished job and resumes it from its checkpoint journal; resumed
// verdicts are byte-identical to uninterrupted ones.
//
// Exit status: 0 after a clean drain, 1 on usage errors, 6 when the
// listener or store cannot be set up or drain times out.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/internal/ckpt"
	"repro/internal/core"
	"repro/internal/exitcode"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8100", "listen address")
	storeDir := flag.String("store", "", "disk-backed job store root (empty = in-memory)")
	workers := flag.Int("workers", 2, "concurrent verification workers")
	queueCap := flag.Int("queue", 64, "admission queue capacity")
	tenantQueued := flag.Int("tenant-queued", 0, "per-tenant queued-job quota (0 = queue capacity)")
	tenantRunning := flag.Int("tenant-running", 0, "per-tenant concurrency quota (0 = workers)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job verification deadline (0 = unlimited)")
	maxProps := flag.Int64("max-props", 0, "per-job propagation budget (0 = unlimited)")
	maxMemory := flag.Int64("max-memory", 0, "per-job estimated-memory budget in bytes (0 = unlimited)")
	engine := flag.String("engine", "watched", "BCP engine: watched | counting | watched-scratch")
	all := flag.Bool("all", false, "check every clause (Proof_verification1)")
	checkpointEvery := flag.Int("checkpoint-every", 1000, "journal interval in proof clauses (-1 disables)")
	maxUpload := flag.Int64("max-upload", 256<<20, "upload body size cap in bytes")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "backpressure hint on 429/503")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	quiet := flag.Bool("q", false, "quiet")
	flag.Parse()

	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: dpvd [flags]")
		return exitcode.Usage
	}
	var engineKind core.EngineKind
	switch *engine {
	case "watched":
		engineKind = core.EngineWatched
	case "counting":
		engineKind = core.EngineCounting
	case "watched-scratch":
		engineKind = core.EngineWatchedScratch
	default:
		fmt.Fprintf(os.Stderr, "dpvd: unknown engine %q\n", *engine)
		return exitcode.Usage
	}
	mode := core.ModeCheckMarked
	if *all {
		mode = core.ModeCheckAll
	}

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	var store service.Store
	if *storeDir != "" {
		ds, err := service.NewDiskStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpvd:", err)
			return exitcode.Internal
		}
		store = ds
	} else {
		store = service.NewMemStore()
	}

	reg := obs.New()
	d, err := service.New(service.Options{
		Store:           store,
		Workers:         *workers,
		QueueCap:        *queueCap,
		DefaultQuota:    service.TenantQuota{MaxQueued: *tenantQueued, MaxRunning: *tenantRunning},
		JobTimeout:      *jobTimeout,
		Budget:          core.Budget{MaxPropagations: *maxProps, MaxMemoryBytes: *maxMemory},
		Mode:            mode,
		Engine:          engineKind,
		CheckpointEvery: *checkpointEvery,
		MaxUploadBytes:  *maxUpload,
		RetryAfter:      *retryAfter,
		Obs:             reg,
		SinkWrap:        ckpt.CrashSink,
		Logf:            logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpvd:", err)
		return exitcode.Internal
	}

	if n, err := d.Recover(); err != nil {
		fmt.Fprintln(os.Stderr, "dpvd:", err)
		return exitcode.Internal
	} else if n > 0 {
		logf("dpvd: recovered %d unfinished job(s); resuming", n)
	}
	d.Start()

	srv := &http.Server{Addr: *addr, Handler: d.Handler(*pprofFlag)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	logf("dpvd: listening on %s (store=%s workers=%d queue=%d)", *addr, storeDesc(*storeDir), *workers, *queueCap)

	select {
	case err := <-errc:
		// The listener died on its own (port in use, ...): nothing to drain.
		fmt.Fprintln(os.Stderr, "dpvd:", err)
		return exitcode.Internal
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then give in-flight jobs
	// the grace period to checkpoint and stop. Queued jobs stay durable.
	logf("dpvd: draining (grace %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logf("dpvd: http shutdown: %v", err)
	}
	if err := d.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "dpvd:", err)
		return exitcode.Internal
	}
	logf("dpvd: drained cleanly")
	return exitcode.OK
}

func storeDesc(dir string) string {
	if dir == "" {
		return "memory"
	}
	return dir
}
