// Command lratcheck validates an LRAT proof — a clausal proof whose every
// addition step carries resolution hints — against its CNF formula. Unlike
// dpv and dratcheck it performs no unit propagation search at all: each step
// replays only the clauses its hints name (each must be unit in order, the
// last falsified), so verification cost is linear in the hint text and the
// steps check independently (-par fans them across workers; -sched selects
// the fixed-chunk split or the default work-stealing schedule over the hint
// dependency DAG).
//
// Proofs in the compact binary encoding (as written by dpv/dratcheck with
// -emit-lrat -lrat-binary) are detected automatically by their magic.
//
// Usage:
//
//	lratcheck [-q] [-par N] [-sched chunk|dag] [-timeout D] [-stats-json f] formula.cnf proof.lrat
//
// Exit status: 0 verified, 1 usage errors, 2 rejected, 3 malformed or
// unreadable formula/proof input, 4 when -timeout expires, 6 internal
// errors (failed output writes), 130 on SIGINT/SIGTERM.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/atomicio"
	"repro/internal/cnf"
	"repro/internal/exitcode"
	"repro/internal/lrat"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	os.Exit(run())
}

func run() int {
	quiet := flag.Bool("q", false, "quiet")
	par := flag.Int("par", 0, "check steps over this many workers (0 or 1 = sequential)")
	schedName := flag.String("sched", "dag", "parallel schedule with -par: chunk (fixed step ranges) | dag (work-stealing over the hint dependency DAG)")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = unlimited)")
	statsJSON := flag.String("stats-json", "", "write a JSON metrics snapshot to this file")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: lratcheck [-q] [-par N] [-sched chunk|dag] [-timeout D] [-stats-json f] formula.cnf proof.lrat")
		return exitcode.Usage
	}
	if *par < 0 {
		fmt.Fprintln(os.Stderr, "lratcheck: -par must be non-negative")
		return exitcode.Usage
	}
	strategy, serr := sched.ParseStrategy(*schedName)
	if serr != nil {
		fmt.Fprintln(os.Stderr, "lratcheck:", serr)
		return exitcode.Usage
	}

	var reg *obs.Registry
	if *statsJSON != "" {
		reg = obs.New()
	}

	// Signals are caught before the (possibly large) inputs are read, so a
	// SIGTERM landing mid-parse still yields the partial-result report and
	// exit 130 instead of the runtime's default death. The -timeout clock
	// starts here too: parse time counts against the budget.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lratcheck:", err)
		return exitcode.BadInput
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lratcheck:", err)
		return exitcode.BadInput
	}

	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lratcheck:", err)
		return exitcode.BadInput
	}
	defer pin.Close()
	p, err := readProof(pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lratcheck:", err)
		if errors.Is(err, lrat.ErrMalformed) || errors.Is(err, lrat.ErrLimit) {
			return exitcode.BadInput
		}
		return exitcode.BadInput // unreadable input is bad input too
	}

	start := time.Now()
	res, cerr := lrat.Check(f, p, lrat.Options{Workers: *par, Strategy: strategy, Ctx: ctx, Obs: reg})
	elapsed := time.Since(start)

	if *statsJSON != "" {
		if serr := atomicio.WriteFile(*statsJSON, reg.WriteJSON); serr != nil {
			fmt.Fprintln(os.Stderr, "lratcheck:", serr)
			return exitcode.Internal
		}
	}
	if cerr != nil {
		fmt.Fprintln(os.Stderr, "lratcheck:", cerr)
		fmt.Printf("s UNKNOWN\n")
		fmt.Printf("c incomplete: stopped before a verdict at step %d\n", res.StoppedAt)
		if errors.Is(cerr, context.DeadlineExceeded) {
			return exitcode.Timeout
		}
		if errors.Is(cerr, context.Canceled) {
			return exitcode.Interrupted
		}
		return exitcode.Internal
	}
	if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc step %d: %s\n", res.FailedStep, res.Reason)
		return exitcode.VerifyFailed
	}
	if !*quiet {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c additions=%d deletions=%d hints=%d elapsed=%s\n",
			res.Additions, res.Deletions, res.HintsScanned, elapsed.Round(time.Millisecond))
	}
	return exitcode.OK
}

// readProof parses the proof in either encoding, sniffing the binary magic.
func readProof(r io.Reader) (*lrat.Proof, error) {
	br := bufio.NewReader(r)
	prefix, err := br.Peek(4)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if lrat.DetectBinary(prefix) {
		return lrat.ReadBinary(br)
	}
	return lrat.Read(br)
}
