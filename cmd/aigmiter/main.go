// Command aigmiter builds a combinational equivalence-checking miter from
// two ASCII AIGER (aag) circuits and emits it as DIMACS CNF — the front
// half of the equivalence-checking flow whose UNSAT instances (the paper's
// c-series miters) the solver and verifier consume.
//
// Usage:
//
//	aigmiter [-o miter.cnf] a.aag b.aag
//
// The circuits must have the same number of inputs and outputs; the miter
// asserts that some output differs, so the CNF is UNSAT exactly when the
// circuits are equivalent.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuit"
	"repro/internal/cnf"
)

func main() {
	os.Exit(run())
}

func run() int {
	out := flag.String("o", "", "output CNF file (default stdout)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: aigmiter [-o miter.cnf] a.aag b.aag")
		return 1
	}
	a, err := readAAG(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigmiter:", err)
		return 1
	}
	b, err := readAAG(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigmiter:", err)
		return 1
	}
	if a.NumInputs() != b.NumInputs() {
		fmt.Fprintf(os.Stderr, "aigmiter: input counts differ (%d vs %d)\n", a.NumInputs(), b.NumInputs())
		return 1
	}
	if len(a.Outputs()) != len(b.Outputs()) || len(a.Outputs()) == 0 {
		fmt.Fprintf(os.Stderr, "aigmiter: output counts differ or are zero (%d vs %d)\n",
			len(a.Outputs()), len(b.Outputs()))
		return 1
	}

	m := circuit.New()
	ins := make([]circuit.Signal, a.NumInputs())
	for i := range ins {
		ins[i] = m.Input()
	}
	ta, err := a.CopyInto(m, ins)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigmiter:", err)
		return 1
	}
	tb, err := b.CopyInto(m, ins)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aigmiter:", err)
		return 1
	}
	diff := circuit.False
	for i := range a.Outputs() {
		diff = m.Or(diff, m.Xor(ta(a.Outputs()[i]), tb(b.Outputs()[i])))
	}
	f := m.ToCNF(diff)

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aigmiter:", err)
			return 1
		}
		defer file.Close()
		w = file
	}
	fmt.Fprintf(w, "c miter of %s and %s (UNSAT <=> equivalent)\n", flag.Arg(0), flag.Arg(1))
	if err := cnf.WriteDimacs(w, f); err != nil {
		fmt.Fprintln(os.Stderr, "aigmiter:", err)
		return 1
	}
	return 0
}

func readAAG(path string) (*circuit.Circuit, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return circuit.ReadAAG(file)
}
