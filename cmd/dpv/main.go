// Command dpv ("deduction proof verifier") checks a conflict-clause proof of
// unsatisfiability against its CNF formula — the paper's contribution as a
// standalone tool. It implements both Proof_verification1 (-all) and
// Proof_verification2 (the default), extracts the unsatisfiable core
// (-core FILE) and can emit the trimmed proof (-trim FILE).
//
// Usage:
//
//	dpv [flags] formula.cnf proof.trace
//
// Flags:
//
//	-all            check every proof clause (Proof_verification1)
//	-engine NAME    watched | counting BCP engine (default watched)
//	-par N          fan the check over N workers (0 = sequential; parallel
//	                mode always checks every clause and extracts no core)
//	-core FILE      write the unsatisfiable core as DIMACS
//	-trim FILE      write the trimmed proof (used clauses only)
//	-timeout D      give up after this long (e.g. 30s, 5m; 0 = unlimited)
//	-max-props N    give up after N unit propagations (0 = unlimited)
//	-max-memory N   refuse runs whose estimated footprint exceeds N bytes
//	-json           emit the verification result as JSON on stdout
//	-stats-json FILE  write a JSON snapshot of every metric and the span tree
//	-progress       report progress on stderr while checking
//	-progress-every N  progress line every N proof clauses (default 1000)
//	-metrics ADDR   serve live metrics over HTTP (expvar-style JSON)
//	-q              quiet: no statistics, exit code only
//
// Exit status:
//
//	0  proof verified
//	1  usage error
//	2  proof rejected
//	3  malformed or oversized formula/proof input
//	4  -timeout expired
//	5  resource budget (-max-props, -max-memory) exhausted
//	6  internal error (worker panic, failed output write)
//	130  interrupted (SIGINT); partial progress is reported first
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/cmd/internal/exitcode"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/proof"
)

func main() {
	os.Exit(run())
}

func run() int {
	all := flag.Bool("all", false, "check every clause (Proof_verification1)")
	engine := flag.String("engine", "watched", "BCP engine: watched | counting")
	par := flag.Int("par", 0, "parallel workers (0 = sequential; implies -all, no core)")
	corePath := flag.String("core", "", "write the unsatisfiable core (DIMACS) to this file")
	trimPath := flag.String("trim", "", "write the trimmed proof to this file")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = unlimited)")
	maxProps := flag.Int64("max-props", 0, "give up after N unit propagations (0 = unlimited)")
	maxMemory := flag.Int64("max-memory", 0, "refuse runs whose estimated footprint exceeds N bytes (0 = unlimited)")
	jsonOut := flag.Bool("json", false, "emit the verification result as JSON on stdout")
	statsJSON := flag.String("stats-json", "", "write a JSON metrics snapshot to this file")
	progress := flag.Bool("progress", false, "report verification progress on stderr")
	progressEvery := flag.Int64("progress-every", 1000, "progress line every N proof clauses")
	metricsAddr := flag.String("metrics", "", "serve live metrics over HTTP on this address")
	quiet := flag.Bool("q", false, "quiet")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dpv [flags] formula.cnf proof.trace")
		return exitcode.Usage
	}
	if *par != 0 && (*corePath != "" || *trimPath != "") {
		fmt.Fprintln(os.Stderr, "dpv: -par checks every clause without marking; -core/-trim need the sequential checker")
		return exitcode.Usage
	}

	// The registry exists whenever any observability surface is requested;
	// nil otherwise, which turns every instrument call into a nil check.
	var reg *obs.Registry
	if *statsJSON != "" || *metricsAddr != "" || *progress {
		reg = obs.New()
	}
	if *metricsAddr != "" {
		addr, shutdown, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "c metrics: http://%v/debug/vars\n", addr)
	}

	parseSpan := reg.StartSpan("parse-formula")
	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}
	parseSpan.End()

	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}
	defer pin.Close()
	tr, err := proof.ReadObserved(pin, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}

	// Context: an optional deadline, and SIGINT cancels so a ^C mid-run
	// still reports how far verification got before exiting 130.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt)
	defer stopSignals()

	opt := core.Options{
		Obs: reg,
		Ctx: ctx,
		Budget: core.Budget{
			MaxPropagations: *maxProps,
			MaxMemoryBytes:  *maxMemory,
		},
	}
	if *all {
		opt.Mode = core.ModeCheckAll
	}
	switch *engine {
	case "watched":
		opt.Engine = core.EngineWatched
	case "counting":
		opt.Engine = core.EngineCounting
	default:
		fmt.Fprintf(os.Stderr, "dpv: unknown engine %q\n", *engine)
		return exitcode.Usage
	}

	if *progress {
		markedC := reg.Counter("verify.marked")
		total := tr.Len()
		opt.Progress = obs.NewProgress(os.Stderr, obs.ProgressConfig{
			Label: "verify",
			Unit:  "clauses",
			Total: int64(total),
			Every: *progressEvery,
			Aux: func() string {
				if total == 0 {
					return ""
				}
				// Fraction of the proof marked as needed so far; its final
				// value is the Result.MarkedProof percentage.
				return fmt.Sprintf("mark=%.1f%%", 100*float64(markedC.Value())/float64(total))
			},
		})
	}

	var res *core.Result
	if *par != 0 {
		res, err = core.VerifyParallelOpts(f, tr, opt, *par)
	} else {
		res, err = core.Verify(f, tr, opt)
	}
	opt.Progress.Finish()
	if *statsJSON != "" {
		if werr := writeStats(*statsJSON, reg); werr != nil {
			fmt.Fprintln(os.Stderr, "dpv:", werr)
			return exitcode.Internal
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		if res != nil && res.Incomplete {
			fmt.Printf("s UNKNOWN\n")
			fmt.Printf("c incomplete: stopped before a verdict\n")
			fmt.Printf("c proof clauses=%d tested=%d tautologies=%d propagations=%d\n",
				res.ProofClauses, res.Tested, res.Tautologies, res.Propagations)
			if res.StoppedAt >= 0 {
				fmt.Printf("c stopped at proof clause %d\n", res.StoppedAt)
			}
		}
		return exitcode.FromVerifyError(err)
	}

	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(resultJSON(res, opt, *par, f.NumClauses())); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		if !res.OK {
			return exitcode.VerifyFailed
		}
	} else if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc clause %d of the proof is not implied: %v\n",
			res.FailedIndex, res.FailedClause)
		return exitcode.VerifyFailed
	}

	if !*quiet && !*jsonOut {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c mode=%v engine=%v termination=%v\n", opt.Mode, opt.Engine, res.Termination)
		fmt.Printf("c proof clauses=%d tested=%d (%.1f%%) skipped=%d tautologies=%d\n",
			res.ProofClauses, res.Tested, res.TestedPct(), res.Skipped, res.Tautologies)
		fmt.Printf("c unsat core: %d of %d original clauses (%.1f%%)\n",
			len(res.Core), f.NumClauses(), res.CorePct(f.NumClauses()))
		fmt.Printf("c propagations=%d\n", res.Propagations)
	}

	if *corePath != "" {
		out, err := os.Create(*corePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		defer out.Close()
		if err := cnf.WriteDimacs(out, core.CoreFormula(f, res)); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
	}
	if *trimPath != "" {
		trimmed, err := core.Trim(tr, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		out, err := os.Create(*trimPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		defer out.Close()
		if err := proof.Write(out, trimmed); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
	}
	return exitcode.OK
}

// jsonResult is the machine-readable shape of a core.Result for -json.
type jsonResult struct {
	Verdict      string  `json:"verdict"` // "verified" | "rejected"
	Mode         string  `json:"mode"`
	Engine       string  `json:"engine"`
	Workers      int     `json:"workers,omitempty"`
	Termination  string  `json:"termination"`
	ProofClauses int     `json:"proof_clauses"`
	Tested       int     `json:"tested"`
	TestedPct    float64 `json:"tested_pct"`
	Skipped      int     `json:"skipped"`
	Tautologies  int     `json:"tautologies"`
	MarkedProof  int     `json:"marked_proof"`
	CoreSize     int     `json:"core_size"`
	CorePct      float64 `json:"core_pct"`
	Propagations int64   `json:"propagations"`
	FailedIndex  int     `json:"failed_index"`            // -1 when verified
	FailedClause []int   `json:"failed_clause,omitempty"` // DIMACS literals
}

func resultJSON(res *core.Result, opt core.Options, workers, nOriginal int) jsonResult {
	out := jsonResult{
		Verdict:      "verified",
		Mode:         opt.Mode.String(),
		Engine:       opt.Engine.String(),
		Workers:      workers,
		Termination:  res.Termination.String(),
		ProofClauses: res.ProofClauses,
		Tested:       res.Tested,
		TestedPct:    res.TestedPct(),
		Skipped:      res.Skipped,
		Tautologies:  res.Tautologies,
		MarkedProof:  res.MarkedProof,
		CoreSize:     len(res.Core),
		CorePct:      res.CorePct(nOriginal),
		Propagations: res.Propagations,
		FailedIndex:  res.FailedIndex,
	}
	if workers != 0 {
		out.Mode = core.ModeCheckAll.String() // parallel always checks everything
	}
	if !res.OK {
		out.Verdict = "rejected"
		for _, l := range res.FailedClause {
			out.FailedClause = append(out.FailedClause, l.Dimacs())
		}
	}
	return out
}

func writeStats(path string, reg *obs.Registry) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	return reg.WriteJSON(out)
}
