// Command dpv ("deduction proof verifier") checks a conflict-clause proof of
// unsatisfiability against its CNF formula — the paper's contribution as a
// standalone tool. It implements both Proof_verification1 (-all) and
// Proof_verification2 (the default), extracts the unsatisfiable core
// (-core FILE) and can emit the trimmed proof (-trim FILE).
//
// Usage:
//
//	dpv [flags] formula.cnf proof.trace
//
// Flags:
//
//	-all            check every proof clause (Proof_verification1)
//	-engine NAME    watched | counting BCP engine (default watched)
//	-par N          fan the check over N workers (0 = sequential)
//	-sched NAME     parallel schedule with -par: "chunk" slices the trace
//	                into fixed per-worker ranges (always checks every
//	                clause, extracts no core); "dag" runs the sequential
//	                checker once to record LRAT hints, then revalidates
//	                every recorded step in parallel over the hint
//	                dependency DAG — honoring the default marked mode and
//	                supporting -core/-trim/-emit-lrat (default chunk)
//	-core FILE      write the unsatisfiable core as DIMACS
//	-trim FILE      write the trimmed proof (used clauses only)
//	-emit-lrat FILE write an LRAT hinted proof of the verification
//	                (sequential or -sched dag; lratcheck re-validates it
//	                without BCP)
//	-lrat-binary    write -emit-lrat output in the compact binary format
//	-timeout D      give up after this long (e.g. 30s, 5m; 0 = unlimited)
//	-max-props N    give up after N unit propagations (0 = unlimited)
//	-max-memory N   refuse runs whose estimated footprint exceeds N bytes
//	-checkpoint FILE  write resumable checkpoints to this journal file
//	-checkpoint-every N  checkpoint interval in proof clauses (default 1000)
//	-resume         resume from the -checkpoint journal when it matches;
//	                any mismatch or corruption falls back to a full run
//	-json           emit the verification result as JSON on stdout
//	-stats-json FILE  write a JSON snapshot of every metric and the span tree
//	-progress       report progress on stderr while checking
//	-progress-every N  progress line every N proof clauses (default 1000)
//	-metrics ADDR   serve live metrics over HTTP: expvar-style JSON at
//	                /debug/vars, Prometheus text format at /metrics
//	-pprof          with -metrics: serve net/http/pprof at /debug/pprof/
//	-trace-out FILE   write a Chrome trace-event JSON flight recording
//	                  (loadable in chrome://tracing or ui.perfetto.dev)
//	-trace-jsonl FILE write the flight recording as JSONL for machine diffing
//	-trace-buf N    flight recorder ring capacity per track (default 65536)
//	-q              quiet: no statistics, exit code only
//
// Exit status:
//
//	0  proof verified
//	1  usage error
//	2  proof rejected
//	3  malformed or oversized formula/proof input
//	4  -timeout expired
//	5  resource budget (-max-props, -max-memory) exhausted
//	6  internal error (worker panic, failed output write)
//	130  interrupted (SIGINT/SIGTERM); partial progress is reported first
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/internal/ckpt"
	"repro/cmd/internal/tracedump"
	"repro/internal/atomicio"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/exitcode"
	"repro/internal/journal"
	"repro/internal/lrat"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/proof"
	"repro/internal/sched"
	"repro/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	all := flag.Bool("all", false, "check every clause (Proof_verification1)")
	engine := flag.String("engine", "watched", "BCP engine: watched | counting | watched-scratch")
	par := flag.Int("par", 0, "parallel workers (0 = sequential)")
	schedName := flag.String("sched", "chunk", "parallel schedule with -par: chunk | dag")
	corePath := flag.String("core", "", "write the unsatisfiable core (DIMACS) to this file")
	trimPath := flag.String("trim", "", "write the trimmed proof to this file")
	lratPath := flag.String("emit-lrat", "", "write an LRAT hinted proof to this file")
	lratBinary := flag.Bool("lrat-binary", false, "write -emit-lrat output in the binary format")
	timeout := flag.Duration("timeout", 0, "give up after this long (0 = unlimited)")
	maxProps := flag.Int64("max-props", 0, "give up after N unit propagations (0 = unlimited)")
	maxMemory := flag.Int64("max-memory", 0, "refuse runs whose estimated footprint exceeds N bytes (0 = unlimited)")
	checkpointPath := flag.String("checkpoint", "", "write resumable checkpoints to this journal file")
	checkpointEvery := flag.Int("checkpoint-every", 1000, "checkpoint interval in proof clauses")
	resume := flag.Bool("resume", false, "resume from the -checkpoint journal when it matches")
	jsonOut := flag.Bool("json", false, "emit the verification result as JSON on stdout")
	statsJSON := flag.String("stats-json", "", "write a JSON metrics snapshot to this file")
	progress := flag.Bool("progress", false, "report verification progress on stderr")
	progressEvery := flag.Int64("progress-every", 1000, "progress line every N proof clauses")
	metricsAddr := flag.String("metrics", "", "serve live metrics over HTTP on this address")
	pprofFlag := flag.Bool("pprof", false, "with -metrics: also serve net/http/pprof under /debug/pprof/")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON flight recording to this file")
	traceJSONL := flag.String("trace-jsonl", "", "write the flight recording as JSONL events to this file")
	traceBuf := flag.Int("trace-buf", 0, "flight recorder ring capacity in events per track (0 = default 65536)")
	quiet := flag.Bool("q", false, "quiet")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dpv [flags] formula.cnf proof.trace")
		return exitcode.Usage
	}
	strategy, serr := sched.ParseStrategy(*schedName)
	if serr != nil {
		fmt.Fprintln(os.Stderr, "dpv:", serr)
		return exitcode.Usage
	}
	dagSched := *par != 0 && strategy == sched.StrategyDAG
	if *par != 0 && !dagSched && (*corePath != "" || *trimPath != "") {
		fmt.Fprintln(os.Stderr, "dpv: chunked -par checks every clause without marking; -core/-trim need the sequential checker or -sched dag")
		return exitcode.Usage
	}
	if *par != 0 && !dagSched && *lratPath != "" {
		fmt.Fprintln(os.Stderr, "dpv: -emit-lrat records one engine's propagation order; it needs the sequential checker or -sched dag")
		return exitcode.Usage
	}
	if *lratBinary && *lratPath == "" {
		fmt.Fprintln(os.Stderr, "dpv: -lrat-binary requires -emit-lrat")
		return exitcode.Usage
	}
	if *resume && *checkpointPath == "" {
		fmt.Fprintln(os.Stderr, "dpv: -resume requires -checkpoint")
		return exitcode.Usage
	}
	if *checkpointPath != "" && *checkpointEvery <= 0 {
		fmt.Fprintln(os.Stderr, "dpv: -checkpoint-every must be positive")
		return exitcode.Usage
	}

	// Context: an optional deadline, and SIGINT or SIGTERM cancels so a ^C
	// — or a supervisor's polite kill — mid-run still reports how far
	// verification got before exiting 130. Built before the observability
	// surfaces so the metrics listener is tied to the same lifetime.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx, stopSignals := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// The registry exists whenever any observability surface is requested;
	// nil otherwise, which turns every instrument call into a nil check.
	// The flight recorder additionally attaches when a trace dump was
	// asked for, and is flushed on every exit path — a rejected proof's or
	// an interrupted run's recording is exactly the one worth reading.
	var reg *obs.Registry
	if *statsJSON != "" || *metricsAddr != "" || *progress || *traceOut != "" || *traceJSONL != "" {
		reg = obs.New()
	}
	var rec *trace.Recorder
	if *traceOut != "" || *traceJSONL != "" {
		rec = trace.New(*traceBuf)
		reg.SetTracer(rec)
		defer func() {
			if err := tracedump.Write("dpv", *traceOut, *traceJSONL, reg, rec); err != nil {
				fmt.Fprintln(os.Stderr, "dpv:", err)
			}
		}()
	}
	if *metricsAddr != "" {
		addr, shutdown, err := obs.Serve(ctx, *metricsAddr, reg, *pprofFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "c metrics: http://%v/debug/vars (Prometheus at /metrics)\n", addr)
	}

	parseSpan := reg.StartSpan("parse-formula")
	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}
	parseSpan.End()

	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}
	defer pin.Close()
	tr, err := proof.ReadObserved(pin, reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return exitcode.BadInput
	}

	opt := core.Options{
		Obs: reg,
		Ctx: ctx,
		Budget: core.Budget{
			MaxPropagations: *maxProps,
			MaxMemoryBytes:  *maxMemory,
		},
	}
	if *all {
		opt.Mode = core.ModeCheckAll
	}
	opt.Sched = strategy
	switch *engine {
	case "watched":
		opt.Engine = core.EngineWatched
	case "counting":
		opt.Engine = core.EngineCounting
	case "watched-scratch":
		opt.Engine = core.EngineWatchedScratch
	default:
		fmt.Fprintf(os.Stderr, "dpv: unknown engine %q\n", *engine)
		return exitcode.Usage
	}
	var hints *lrat.Recorder
	if *lratPath != "" {
		hints = new(lrat.Recorder)
		opt.Hints = hints
	}

	// Checkpoint journal: open a matching journal first when resuming, then
	// start a fresh one for this run. The resumed record is re-appended as
	// the new journal's first record so no durable progress is ever lost,
	// and every validation failure degrades to a full run with a warning —
	// never a wrong verdict.
	var jw *journal.Writer
	if *checkpointPath != "" {
		meta := journal.Meta{
			Kind:      journal.KindVerifySeq,
			Mode:      uint8(opt.Mode),
			Engine:    uint8(opt.Engine),
			Interval:  uint32(*checkpointEvery),
			FormulaFP: journal.FingerprintFormula(f),
			ProofFP:   journal.FingerprintTrace(tr),
		}
		if dagSched {
			// DAG parallelism does not shape durable state (the watermark is
			// worker-independent), so Workers stays 0 and any -par resumes
			// the journal; the actual mode is honored and recorded.
			meta.Kind = journal.KindVerifyDAG
		} else if *par != 0 {
			meta.Kind = journal.KindVerifyParallel
			meta.Mode = uint8(core.ModeCheckAll)
			meta.Workers = uint32(core.ResolveWorkers(tr.Len(), *par))
		}
		var resumeCp *core.Checkpoint
		var resumePayload []byte
		if *resume {
			payload, jerr := journal.Open(*checkpointPath, meta, reg)
			if jerr == nil {
				cp, derr := core.DecodeCheckpoint(payload)
				if derr == nil {
					if cp.DAG {
						// A phase-2 record of a DAG run (journal kinds already
						// matched, so this run is DAG-scheduled too).
						derr = cp.ValidateForDAG(f.NumClauses(), tr.Len())
					} else if dagSched {
						// A DAG run killed during its sequential emit phase.
						derr = cp.ValidateFor(f.NumClauses(), tr.Len(), 0)
					} else {
						derr = cp.ValidateFor(f.NumClauses(), tr.Len(), int(meta.Workers))
					}
				}
				if derr == nil && hints != nil && cp.Hints == nil {
					// The steps recorded before the crash live only in the
					// checkpoint; a hint-free journal cannot seed -emit-lrat.
					derr = fmt.Errorf("journal predates -emit-lrat, hints unrecoverable")
				}
				if derr == nil {
					resumeCp = cp
					resumePayload = payload
				} else {
					jerr = derr
				}
			}
			if jerr != nil {
				fmt.Fprintf(os.Stderr, "dpv: warning: not resuming (%v); running from scratch\n", jerr)
			}
		}
		w, jerr := journal.Create(*checkpointPath, meta, reg)
		if jerr != nil {
			fmt.Fprintln(os.Stderr, "dpv:", jerr)
			return exitcode.Internal
		}
		jw = w
		defer jw.Close()
		if resumePayload != nil {
			if jerr := jw.Append(resumePayload); jerr != nil {
				fmt.Fprintln(os.Stderr, "dpv:", jerr)
				return exitcode.Internal
			}
		}
		opt.Checkpoint = core.CheckpointConfig{
			Every:  *checkpointEvery,
			Sink:   ckpt.CrashSink(jw.Append),
			Resume: resumeCp,
		}
	}

	if *progress {
		markedC := reg.Counter("verify.marked")
		total := tr.Len()
		opt.Progress = obs.NewProgress(os.Stderr, obs.ProgressConfig{
			Label:    "verify",
			Unit:     "clauses",
			Total:    int64(total),
			Every:    *progressEvery,
			Interval: 10 * time.Second, // heartbeat even when one check stalls
			Aux: func() string {
				if total == 0 {
					return ""
				}
				// Fraction of the proof marked as needed so far; its final
				// value is the Result.MarkedProof percentage.
				return fmt.Sprintf("mark=%.1f%%", 100*float64(markedC.Value())/float64(total))
			},
		})
	}

	var res *core.Result
	if *par != 0 {
		res, err = core.VerifyParallelOpts(f, tr, opt, *par)
	} else {
		res, err = core.Verify(f, tr, opt)
	}
	opt.Progress.Finish()
	if *statsJSON != "" {
		if werr := writeStats(*statsJSON, reg); werr != nil {
			fmt.Fprintln(os.Stderr, "dpv:", werr)
			return exitcode.Internal
		}
	}
	if err != nil {
		if jw != nil {
			// Flush a final record so the journal visibly ends with a clean
			// stop (SIGINT, timeout, budget); a later -resume restarts from
			// the last checkpoint record.
			note := fmt.Sprintf("incomplete err=%v", err)
			if res != nil {
				note = fmt.Sprintf("incomplete stopped_at=%d tested=%d err=%v", res.StoppedAt, res.Tested, err)
			}
			if ferr := jw.AppendFinal([]byte(note)); ferr != nil {
				fmt.Fprintln(os.Stderr, "dpv:", ferr)
			}
		}
		fmt.Fprintln(os.Stderr, "dpv:", err)
		if res != nil && res.Incomplete {
			fmt.Printf("s UNKNOWN\n")
			fmt.Printf("c incomplete: stopped before a verdict\n")
			fmt.Printf("c proof clauses=%d tested=%d tautologies=%d propagations=%d\n",
				res.ProofClauses, res.Tested, res.Tautologies, res.Propagations)
			if res.StoppedAt >= 0 {
				fmt.Printf("c stopped at proof clause %d\n", res.StoppedAt)
			}
		}
		return exitcode.FromVerifyError(err)
	}

	// A verdict was reached; the journal is stale by definition.
	if jw != nil {
		if rerr := jw.Remove(); rerr != nil {
			fmt.Fprintln(os.Stderr, "dpv:", rerr)
		}
	}

	if *jsonOut {
		v := service.BuildVerdict(res, opt.Mode, opt.Engine, *par, f.NumClauses())
		if err := json.NewEncoder(os.Stdout).Encode(v); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		if !res.OK {
			return exitcode.VerifyFailed
		}
	} else if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc clause %d of the proof is not implied: %v\n",
			res.FailedIndex, res.FailedClause)
		return exitcode.VerifyFailed
	}

	if !*quiet && !*jsonOut {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c mode=%v engine=%v termination=%v\n", opt.Mode, opt.Engine, res.Termination)
		fmt.Printf("c proof clauses=%d tested=%d (%.1f%%) skipped=%d tautologies=%d\n",
			res.ProofClauses, res.Tested, res.TestedPct(), res.Skipped, res.Tautologies)
		fmt.Printf("c unsat core: %d of %d original clauses (%.1f%%)\n",
			len(res.Core), f.NumClauses(), res.CorePct(f.NumClauses()))
		fmt.Printf("c propagations=%d\n", res.Propagations)
	}

	if *corePath != "" {
		err := atomicio.WriteFile(*corePath, func(w io.Writer) error {
			return cnf.WriteDimacs(w, core.CoreFormula(f, res))
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
	}
	if *trimPath != "" {
		trimmed, err := core.Trim(tr, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
		err = atomicio.WriteFile(*trimPath, func(w io.Writer) error {
			return proof.Write(w, trimmed)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
	}
	if hints != nil && res.OK {
		if err := writeLRAT(*lratPath, hints, *lratBinary); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return exitcode.Internal
		}
	}
	return exitcode.OK
}

// writeLRAT renders a recorder's proof to path (text or binary) atomically.
func writeLRAT(path string, rec *lrat.Recorder, binary bool) error {
	lp, err := rec.Proof()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, func(w io.Writer) error {
		if binary {
			return lrat.WriteBinary(w, lp)
		}
		return lrat.Write(w, lp)
	})
}

func writeStats(path string, reg *obs.Registry) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return reg.WriteJSON(w)
	})
}
