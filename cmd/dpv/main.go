// Command dpv ("deduction proof verifier") checks a conflict-clause proof of
// unsatisfiability against its CNF formula — the paper's contribution as a
// standalone tool. It implements both Proof_verification1 (-all) and
// Proof_verification2 (the default), extracts the unsatisfiable core
// (-core FILE) and can emit the trimmed proof (-trim FILE).
//
// Usage:
//
//	dpv [flags] formula.cnf proof.trace
//
// Flags:
//
//	-all          check every proof clause (Proof_verification1)
//	-engine NAME  watched | counting BCP engine (default watched)
//	-core FILE    write the unsatisfiable core as DIMACS
//	-trim FILE    write the trimmed proof (used clauses only)
//	-q            quiet: no statistics, exit code only
//
// Exit status: 0 when the proof is correct, 2 when it is rejected,
// 1 on usage/IO errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/proof"
)

func main() {
	os.Exit(run())
}

func run() int {
	all := flag.Bool("all", false, "check every clause (Proof_verification1)")
	engine := flag.String("engine", "watched", "BCP engine: watched | counting")
	corePath := flag.String("core", "", "write the unsatisfiable core (DIMACS) to this file")
	trimPath := flag.String("trim", "", "write the trimmed proof to this file")
	quiet := flag.Bool("q", false, "quiet")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: dpv [flags] formula.cnf proof.trace")
		return 1
	}

	fin, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return 1
	}
	defer fin.Close()
	f, err := cnf.ParseDimacs(fin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return 1
	}

	pin, err := os.Open(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return 1
	}
	defer pin.Close()
	tr, err := proof.Read(pin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return 1
	}

	opt := core.Options{}
	if *all {
		opt.Mode = core.ModeCheckAll
	}
	switch *engine {
	case "watched":
		opt.Engine = core.EngineWatched
	case "counting":
		opt.Engine = core.EngineCounting
	default:
		fmt.Fprintf(os.Stderr, "dpv: unknown engine %q\n", *engine)
		return 1
	}

	res, err := core.Verify(f, tr, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpv:", err)
		return 1
	}
	if !res.OK {
		fmt.Printf("s PROOF REJECTED\nc clause %d of the proof is not implied: %v\n",
			res.FailedIndex, res.FailedClause)
		return 2
	}

	if !*quiet {
		fmt.Println("s PROOF VERIFIED")
		fmt.Printf("c mode=%v engine=%v termination=%v\n", opt.Mode, opt.Engine, res.Termination)
		fmt.Printf("c proof clauses=%d tested=%d (%.1f%%) skipped=%d tautologies=%d\n",
			res.ProofClauses, res.Tested, res.TestedPct(), res.Skipped, res.Tautologies)
		fmt.Printf("c unsat core: %d of %d original clauses (%.1f%%)\n",
			len(res.Core), f.NumClauses(), res.CorePct(f.NumClauses()))
		fmt.Printf("c propagations=%d\n", res.Propagations)
	}

	if *corePath != "" {
		out, err := os.Create(*corePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return 1
		}
		defer out.Close()
		if err := cnf.WriteDimacs(out, core.CoreFormula(f, res)); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return 1
		}
	}
	if *trimPath != "" {
		trimmed, err := core.Trim(tr, res)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return 1
		}
		out, err := os.Create(*trimPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return 1
		}
		defer out.Close()
		if err := proof.Write(out, trimmed); err != nil {
			fmt.Fprintln(os.Stderr, "dpv:", err)
			return 1
		}
	}
	return 0
}
