package main

import (
	"strings"
	"testing"

	"repro/internal/lrat"
)

func TestPow2Bucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1023: 9, 1024: 10}
	for n, want := range cases {
		if got := pow2Bucket(n); got != want {
			t.Errorf("pow2Bucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLRATStats(t *testing.T) {
	p, err := lrat.Read(strings.NewReader("4 1 0 1 2 0\n4 d 2 0\n5 0 3 4 1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	out := lratStats(p)
	for _, want := range []string{
		"steps: 3 (2 additions, 1 deletions)",
		"refutation step: true",
		"hints: 5 total, 2.5 mean/step, 3 max",
		"hinted/trimmed size: 10/3 tokens = 3.33x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
