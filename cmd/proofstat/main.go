// Command proofstat analyzes a conflict-clause proof trace: sizes, clause
// length distribution, per-clause resolution counts and the local/global
// clause split of the paper's §5. It also converts between the text and
// binary trace formats.
//
// Usage:
//
//	proofstat proof.trace               # print statistics
//	proofstat -threshold 64 proof.trace # custom local/global threshold
//	proofstat -to-binary out.bin proof.trace
//	proofstat -to-text out.trace proof.bin
//
// Input format (text vs binary) is auto-detected from the magic bytes.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/proof"
)

func main() {
	os.Exit(run())
}

func run() int {
	threshold := flag.Int64("threshold", 0, "resolution count above which a clause is 'global' (default 32)")
	toBinary := flag.String("to-binary", "", "convert the trace to binary format at this path")
	toText := flag.String("to-text", "", "convert the trace to text format at this path")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: proofstat [flags] proof.trace")
		return 1
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofstat:", err)
		return 1
	}

	var tr *proof.Trace
	if bytes.HasPrefix(data, []byte("CCPF")) {
		tr, err = proof.ReadBinary(bytes.NewReader(data))
	} else {
		tr, err = proof.Read(bytes.NewReader(data))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofstat:", err)
		return 1
	}

	if *toBinary != "" {
		if err := writeWith(*toBinary, tr, proof.WriteBinary); err != nil {
			fmt.Fprintln(os.Stderr, "proofstat:", err)
			return 1
		}
	}
	if *toText != "" {
		if err := writeWith(*toText, tr, proof.Write); err != nil {
			fmt.Fprintln(os.Stderr, "proofstat:", err)
			return 1
		}
	}
	if *toBinary != "" || *toText != "" {
		return 0
	}

	fmt.Printf("termination: %v\n", tr.Terminates())
	fmt.Print(tr.ComputeStats(*threshold))
	return 0
}

func writeWith(path string, tr *proof.Trace, w func(io.Writer, *proof.Trace) error) error {
	return atomicio.WriteFile(path, func(out io.Writer) error {
		return w(out, tr)
	})
}
