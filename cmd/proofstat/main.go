// Command proofstat analyzes a conflict-clause proof trace: sizes, clause
// length distribution, per-clause resolution counts and the local/global
// clause split of the paper's §5. It also converts between the text and
// binary trace formats.
//
// Hinted (LRAT) proofs get their own report: a power-of-two histogram of
// hints per addition step, antecedent fan-in (how often each clause is
// cited as a hint), and the hinted-vs-trimmed size ratio — what carrying
// the hints costs over the bare trimmed derivation.
//
// Usage:
//
//	proofstat proof.trace               # print statistics
//	proofstat -threshold 64 proof.trace # custom local/global threshold
//	proofstat proof.lrat                # hint statistics for a hinted proof
//	proofstat -to-binary out.bin proof.trace
//	proofstat -to-text out.trace proof.bin
//
// Input format is auto-detected: binary traces by the CCPF magic, binary
// LRAT by the CLRT magic, text LRAT by a .lrat filename suffix; everything
// else parses as a text trace. The conversion flags work for both kinds,
// emitting the matching trace or LRAT format.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/lrat"
	"repro/internal/proof"
)

func main() {
	os.Exit(run())
}

func run() int {
	threshold := flag.Int64("threshold", 0, "resolution count above which a clause is 'global' (default 32)")
	toBinary := flag.String("to-binary", "", "convert the input to binary format at this path")
	toText := flag.String("to-text", "", "convert the input to text format at this path")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: proofstat [flags] proof.trace|proof.lrat")
		return 1
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofstat:", err)
		return 1
	}

	if lrat.DetectBinary(data) || strings.HasSuffix(path, ".lrat") {
		return runLRAT(data, *toBinary, *toText)
	}

	var tr *proof.Trace
	if bytes.HasPrefix(data, []byte("CCPF")) {
		tr, err = proof.ReadBinary(bytes.NewReader(data))
	} else {
		tr, err = proof.Read(bytes.NewReader(data))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofstat:", err)
		return 1
	}

	if *toBinary != "" {
		if err := writeWith(*toBinary, tr, proof.WriteBinary); err != nil {
			fmt.Fprintln(os.Stderr, "proofstat:", err)
			return 1
		}
	}
	if *toText != "" {
		if err := writeWith(*toText, tr, proof.Write); err != nil {
			fmt.Fprintln(os.Stderr, "proofstat:", err)
			return 1
		}
	}
	if *toBinary != "" || *toText != "" {
		return 0
	}

	fmt.Printf("termination: %v\n", tr.Terminates())
	fmt.Print(tr.ComputeStats(*threshold))
	return 0
}

func runLRAT(data []byte, toBinary, toText string) int {
	var p *lrat.Proof
	var err error
	if lrat.DetectBinary(data) {
		p, err = lrat.ReadBinary(bytes.NewReader(data))
	} else {
		p, err = lrat.Read(bytes.NewReader(data))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofstat:", err)
		return 1
	}

	if toBinary != "" {
		if err := writeLRATWith(toBinary, p, lrat.WriteBinary); err != nil {
			fmt.Fprintln(os.Stderr, "proofstat:", err)
			return 1
		}
	}
	if toText != "" {
		if err := writeLRATWith(toText, p, lrat.Write); err != nil {
			fmt.Fprintln(os.Stderr, "proofstat:", err)
			return 1
		}
	}
	if toBinary != "" || toText != "" {
		return 0
	}

	fmt.Print(lratStats(p))
	return 0
}

// lratStats renders the hinted-proof report. All statistics are over
// addition steps; deletions carry no hints.
func lratStats(p *lrat.Proof) string {
	var b strings.Builder
	additions, deletions := p.Additions(), p.Deletions()
	fmt.Fprintf(&b, "steps: %d (%d additions, %d deletions)\n",
		len(p.Steps), additions, deletions)
	if additions == 0 {
		return b.String()
	}

	// Hints per addition step, bucketed by power of two, plus totals for
	// the mean and the size ratio.
	var totalHints, totalLits int64
	var maxHints int
	buckets := map[int]int{} // bucket index -> steps; bucket i covers [2^i, 2^(i+1))
	fanIn := map[int64]int64{}
	refuted := false
	for i := range p.Steps {
		s := &p.Steps[i]
		if s.Del {
			continue
		}
		n := len(s.Hints)
		totalHints += int64(n)
		totalLits += int64(len(s.C))
		if n > maxHints {
			maxHints = n
		}
		buckets[pow2Bucket(n)]++
		for _, h := range s.Hints {
			if h > 0 {
				fanIn[h]++
			}
		}
		if len(s.C) == 0 {
			refuted = true
		}
	}
	fmt.Fprintf(&b, "refutation step: %v\n", refuted)
	fmt.Fprintf(&b, "hints: %d total, %.1f mean/step, %d max\n",
		totalHints, float64(totalHints)/float64(additions), maxHints)

	fmt.Fprintf(&b, "hints per step (pow2 buckets):\n")
	for i := 0; i <= pow2Bucket(maxHints); i++ {
		lo := 1 << i
		if i == 0 {
			lo = 0 // zero-hint (tautology) steps fold into the first bucket
		}
		fmt.Fprintf(&b, "  [%6d,%6d): %8d\n", lo, 1<<(i+1), buckets[i])
	}

	// Antecedent fan-in: how many steps cite each clause. High fan-in
	// clauses are the proof's shared lemmas.
	var maxFan, sumFan int64
	for _, n := range fanIn {
		sumFan += n
		if n > maxFan {
			maxFan = n
		}
	}
	if len(fanIn) > 0 {
		fmt.Fprintf(&b, "antecedent fan-in: %d clauses cited, %.1f mean, %d max\n",
			len(fanIn), float64(sumFan)/float64(len(fanIn)), maxFan)
	}

	// Size ratio: tokens of the hinted proof (literals + hints + two
	// terminators per line) over the bare trimmed derivation (literals +
	// one terminator) — what shipping hints costs on the wire.
	hinted := totalLits + totalHints + 2*int64(additions)
	trimmed := totalLits + int64(additions)
	fmt.Fprintf(&b, "hinted/trimmed size: %d/%d tokens = %.2fx\n",
		hinted, trimmed, float64(hinted)/float64(trimmed))

	// The clause-dependency DAG the work-stealing scheduler would run over
	// (internal/sched): depth bounds the number of sequential rounds, max
	// width bounds useful workers, and total/critical cost is the Brent
	// upper bound on achievable speedup.
	ds := lrat.BuildDAG(p).Stats()
	fmt.Fprintf(&b, "hint DAG: %d tasks, %d edges, %d roots\n", ds.Tasks, ds.Edges, ds.Roots)
	fmt.Fprintf(&b, "  depth %d, max width %d, %.1f mean out-degree\n",
		ds.Depth, ds.MaxWidth, ds.AvgOut)
	if ds.CritCost > 0 {
		fmt.Fprintf(&b, "  critical path %d of %d hint cost = %.1fx parallelism bound\n",
			ds.CritCost, ds.TotalCost, float64(ds.TotalCost)/float64(ds.CritCost))
	}
	return b.String()
}

// pow2Bucket maps a hint count to its histogram bucket: bucket i covers
// [2^i, 2^(i+1)), with 0 folded into bucket 0.
func pow2Bucket(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

func writeWith(path string, tr *proof.Trace, w func(io.Writer, *proof.Trace) error) error {
	return atomicio.WriteFile(path, func(out io.Writer) error {
		return w(out, tr)
	})
}

func writeLRATWith(path string, p *lrat.Proof, w func(io.Writer, *lrat.Proof) error) error {
	return atomicio.WriteFile(path, func(out io.Writer) error {
		return w(out, p)
	})
}
