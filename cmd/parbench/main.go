// Command parbench measures the dependency-aware work-stealing schedule
// against the fixed-chunk split on trace shapes built to punish chunking:
// expensive redundant steps clustered where a contiguous split lands them
// on one worker. It writes a BENCH_par.json report (see
// internal/bench.ParReport) and enforces the acceptance floors — suite
// chunk/DAG speedup at least 1.3x and scheduled wall time within 2x of the
// critical-path lower bound — whenever the walls clear the noise floor.
//
// Usage:
//
//	parbench [-quick] [-par 8] [-iters 3] [-o BENCH_par.json]
//
// -quick keeps only the headline imbalanced instance (same name and
// parameters as the full suite, so the output still diffs against a
// committed full-suite baseline via benchdiff -par).
//
// Exit status: 0 success, 1 an acceptance floor was violated, 2 usage or
// measurement errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "headline instance only, for smoke gating")
	par := flag.Int("par", 8, "worker count for both schedules")
	iters := flag.Int("iters", 3, "repetitions per measurement (best is kept)")
	out := flag.String("o", "", "write the JSON report to this file")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: parbench [-quick] [-par 8] [-iters 3] [-o BENCH_par.json]")
		return 2
	}

	rep, err := bench.ParBench(bench.ParInstances(*quick), *par, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parbench:", err)
		return 2
	}

	fmt.Printf("workers=%d cpus=%d iters=%d\n", rep.Workers, rep.EffectiveCPUs, rep.Iters)
	for _, ir := range rep.Instances {
		fmt.Printf("%-16s trace=%d marked=%d dag(depth=%d width=%d crit=%d/%d)\n",
			ir.Name, ir.TraceLen, ir.Marked,
			ir.DAGStats.Depth, ir.DAGStats.MaxWidth, ir.DAGStats.CritCost, ir.DAGStats.TotalCost)
		fmt.Printf("%-16s chunk=%.2fms dag=%.2fms speedup=%.2fx  T1=%.2fms TW=%.2fms steals=%d crit-ratio=%.2fx\n",
			"", ir.ChunkMillis, ir.DAGMillis, ir.Speedup,
			ir.T1Millis, ir.TWMillis, ir.Steals, ir.CritRatio)
	}
	fmt.Printf("suite: chunk=%.2fms dag=%.2fms speedup=%.2fx\n",
		rep.TotalChunkMillis, rep.TotalDAGMillis, rep.Speedup)

	if *out != "" {
		write := func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		if err := atomicio.WriteFile(*out, write); err != nil {
			fmt.Fprintln(os.Stderr, "parbench:", err)
			return 2
		}
	}

	if v := rep.CheckFloors(); len(v) > 0 {
		for _, s := range v {
			fmt.Fprintln(os.Stderr, "parbench: FAIL:", s)
		}
		return 1
	}
	return 0
}
