// Command dpvrouter is the cluster front tier for dpvd: it consistent-
// hashes job IDs onto backend shards, replicates completed verdicts onto R
// nodes (each of which re-verifies the hinted proof before acking), and
// keeps the job API answering while individual shards die and return.
//
// Usage:
//
//	dpvrouter -shards URL[,URL...] [flags]
//
// Flags:
//
//	-addr ADDR            listen address (default :8200)
//	-shards LIST          comma-separated backend base URLs (required)
//	-replication R        copies per verdict, primary included (default 2)
//	-hedge-delay D        wait on the primary before asking a replica (50ms)
//	-health-interval D    /readyz probe period (default 250ms)
//	-health-failures N    consecutive probe failures that eject (default 3)
//	-replicate-interval D verdict replication sweep period (default 100ms)
//	-retry-after D        backpressure hint on 429/503 (default 2s)
//	-max-upload N         upload body cap in bytes (default 64 MiB)
//	-breaker-threshold N  consecutive failures that open a shard's circuit
//	                      breaker (default 5)
//	-breaker-open-for D   how long an open breaker rejects before probing
//	                      (default 1s)
//	-forward-attempts N   admission attempts, each walking every live shard
//	                      (default 3)
//	-forward-timeout D    per-backend-request timeout (default 5s)
//	-pprof                serve net/http/pprof under /debug/pprof/
//	-q                    quiet: suppress operational log lines
//
// The router serves the same job API as a single dpvd (POST /v1/jobs,
// GET /v1/jobs/{id} with hedged reads, /core, /lrat, /recheck) plus
// GET /v1/cluster for topology, and /metrics, /healthz, /readyz.
//
// Fault model: a shard that dies mid-job is ejected after -health-failures
// probes; every job it owed a verdict is re-admitted on a survivor from the
// router's retained copy of the upload — an admitted job is never lost.
// Completed verified verdicts are replicated (verdict JSON + hinted proof +
// formula) to R shards; replicas re-verify the proof before acking, so a
// corrupted copy can never be served. Reads hedge to replicas when the
// primary is slow or gone.
//
// Exit status: 0 after a clean shutdown, 1 on usage errors, 6 when the
// listener cannot be set up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/exitcode"
	"repro/internal/obs"
	"repro/internal/retry"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8200", "listen address")
	shards := flag.String("shards", "", "comma-separated backend base URLs (required)")
	replication := flag.Int("replication", 2, "copies per verdict, primary included")
	hedgeDelay := flag.Duration("hedge-delay", 50*time.Millisecond, "wait on the primary before asking a replica")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "/readyz probe period")
	healthFailures := flag.Int("health-failures", 3, "consecutive probe failures that eject a shard")
	replicateInterval := flag.Duration("replicate-interval", 100*time.Millisecond, "verdict replication sweep period")
	retryAfter := flag.Duration("retry-after", 2*time.Second, "backpressure hint on 429/503")
	maxUpload := flag.Int64("max-upload", 64<<20, "upload body cap in bytes")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that open a shard breaker")
	breakerOpenFor := flag.Duration("breaker-open-for", time.Second, "open-breaker rejection window before probing")
	forwardAttempts := flag.Int("forward-attempts", 3, "admission attempts (each walks every live shard)")
	forwardTimeout := flag.Duration("forward-timeout", 5*time.Second, "per-backend-request timeout")
	pprofFlag := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	quiet := flag.Bool("q", false, "quiet")
	flag.Parse()

	if flag.NArg() != 0 || *shards == "" {
		fmt.Fprintln(os.Stderr, "usage: dpvrouter -shards URL[,URL...] [flags]")
		return exitcode.Usage
	}
	var urls []string
	for _, s := range strings.Split(*shards, ",") {
		s = strings.TrimSpace(strings.TrimSuffix(s, "/"))
		if s == "" {
			continue
		}
		if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
			s = "http://" + s
		}
		urls = append(urls, s)
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "dpvrouter: -shards lists no usable URLs")
		return exitcode.Usage
	}

	logf := log.New(os.Stderr, "", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	rt, err := cluster.New(cluster.Options{
		Shards:            urls,
		Replication:       *replication,
		HedgeDelay:        *hedgeDelay,
		HealthInterval:    *healthInterval,
		HealthFailures:    *healthFailures,
		ReplicateInterval: *replicateInterval,
		RetryAfter:        *retryAfter,
		MaxUploadBytes:    *maxUpload,
		Breaker:           retry.BreakerConfig{Threshold: *breakerThreshold, OpenFor: *breakerOpenFor},
		Forward:           retry.Policy{MaxAttempts: *forwardAttempts, BaseDelay: 50 * time.Millisecond, PerAttempt: *forwardTimeout},
		Obs:               obs.New(),
		Logf:              logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpvrouter:", err)
		return exitcode.Internal
	}
	rt.Start()

	srv := &http.Server{Addr: *addr, Handler: rt.Handler(*pprofFlag)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	logf("dpvrouter: listening on %s (%d shards, R=%d)", *addr, len(urls), *replication)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "dpvrouter:", err)
		return exitcode.Internal
	case <-ctx.Done():
	}

	logf("dpvrouter: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logf("dpvrouter: http shutdown: %v", err)
	}
	rt.Close()
	logf("dpvrouter: stopped")
	return exitcode.OK
}
