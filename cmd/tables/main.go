// Command tables regenerates the paper's experimental tables and the
// repository's ablation studies on the substituted benchmark suites (see
// DESIGN.md §3 for what stands in for each 2002 instance family).
//
// Usage:
//
//	tables              # everything
//	tables -table 1     # Table 1: unsatisfiable core extraction
//	tables -table 2     # Table 2: proof verification, proof sizes
//	tables -table 3     # Table 3: resolution proof growth (fifo family)
//	tables -ablation schemes|verify|bcp|trim|core
//	tables -quick       # small instances (smoke test)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/gen"
)

func main() {
	os.Exit(run())
}

func run() int {
	table := flag.Int("table", 0, "which table to regenerate (1-3; 0 = all)")
	ablation := flag.String("ablation", "", "ablation to run: schemes | verify | bcp | trim | core | simplify | cores | baselines")
	quick := flag.Bool("quick", false, "use the quick suite")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text (tables 1-3 and schemes only)")
	flag.Parse()

	opts := bench.DefaultSolverOptions()
	suite := bench.SuiteMain()
	fifo := bench.SuiteFifo()
	if *quick {
		suite = bench.SuiteQuick()
		fifo = []gen.Instance{gen.Fifo(4, 6), gen.Fifo(4, 12), gen.Fifo(4, 18)}
	}

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "tables:", err)
		return 1
	}

	runTable := func(n int) error {
		switch n {
		case 1:
			rows, err := bench.Table1(suite, opts)
			if err != nil {
				return err
			}
			if *csvOut {
				return bench.CSVTable1(os.Stdout, rows)
			}
			fmt.Println("== Table 1: Unsatisfiable core extraction ==")
			if err := bench.RenderTable1(os.Stdout, rows); err != nil {
				return err
			}
		case 2:
			rows, err := bench.Table2(suite, opts)
			if err != nil {
				return err
			}
			if *csvOut {
				return bench.CSVTable2(os.Stdout, rows)
			}
			fmt.Println("== Table 2: Proof verification ==")
			if err := bench.RenderTable2(os.Stdout, rows); err != nil {
				return err
			}
		case 3:
			rows, err := bench.Table3(fifo, opts)
			if err != nil {
				return err
			}
			if *csvOut {
				return bench.CSVTable3(os.Stdout, rows)
			}
			fmt.Println("== Table 3: Growth of resolution proof size (fifo family) ==")
			if err := bench.RenderTable3(os.Stdout, rows); err != nil {
				return err
			}
		}
		fmt.Println()
		return nil
	}

	runAblation := func(name string) error {
		switch name {
		case "schemes":
			schemeSuite := bench.SuiteAblation()
			if *quick {
				schemeSuite = suite
			}
			rows, err := bench.SchemesAblation(schemeSuite, opts)
			if err != nil {
				return err
			}
			if *csvOut {
				return bench.CSVSchemes(os.Stdout, rows)
			}
			fmt.Println("== Ablation: learning schemes (local vs global clauses, §5) ==")
			return bench.RenderSchemes(os.Stdout, rows)
		case "verify":
			fmt.Println("== Ablation: Proof_verification1 vs Proof_verification2 ==")
			rows, err := bench.VerifyModesAblation(suite, opts)
			if err != nil {
				return err
			}
			return bench.RenderVerifyModes(os.Stdout, rows)
		case "bcp":
			fmt.Println("== Ablation: watched-literal vs counting BCP in the verifier ==")
			rows, err := bench.EngineAblation(suite, opts)
			if err != nil {
				return err
			}
			return bench.RenderEngines(os.Stdout, rows)
		case "trim":
			fmt.Println("== Ablation: proof trimming ==")
			rows, err := bench.TrimAblation(suite, opts)
			if err != nil {
				return err
			}
			return bench.RenderTrim(os.Stdout, rows)
		case "simplify":
			fmt.Println("== Ablation: preprocessing (simplify) before solving ==")
			rows, err := bench.SimplifyAblation(suite, opts)
			if err != nil {
				return err
			}
			return bench.RenderSimplify(os.Stdout, rows)
		case "cores":
			fmt.Println("== Ablation: unsat-core methods (verification vs assumptions vs resolution vs MUS) ==")
			coreSuite := bench.SuiteAblation()
			if *quick {
				coreSuite = suite
			}
			rows, err := bench.CoreMethodsAblation(coreSuite, opts, 600)
			if err != nil {
				return err
			}
			return bench.RenderCoreMethods(os.Stdout, rows)
		case "baselines":
			fmt.Println("== Ablation: CDCL vs DPLL vs BDD baselines ==")
			baseSuite := bench.SuiteAblation()
			if *quick {
				baseSuite = suite
			}
			rows, err := bench.BaselinesAblation(baseSuite, opts, 2_000_000, 2_000_000)
			if err != nil {
				return err
			}
			return bench.RenderBaselines(os.Stdout, rows)
		case "core":
			fmt.Println("== Ablation: unsat-core fixpoint minimization ==")
			var rows []bench.CoreRow
			for _, inst := range suite {
				row, err := bench.CoreFixpoint(inst, opts, 5)
				if err != nil {
					return err
				}
				rows = append(rows, *row)
			}
			return bench.RenderCores(os.Stdout, rows)
		default:
			return fmt.Errorf("unknown ablation %q", name)
		}
	}

	switch {
	case *ablation != "":
		if err := runAblation(*ablation); err != nil {
			return fail(err)
		}
	case *table != 0:
		if err := runTable(*table); err != nil {
			return fail(err)
		}
	default:
		for n := 1; n <= 3; n++ {
			if err := runTable(n); err != nil {
				return fail(err)
			}
		}
		for _, name := range []string{"schemes", "verify", "bcp", "trim", "simplify", "cores"} {
			if err := runAblation(name); err != nil {
				return fail(err)
			}
			fmt.Println()
		}
	}
	return 0
}
