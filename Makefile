# Pre-merge gate and developer conveniences. The repo is stdlib-only, so
# `go` is the only tool required.

GO ?= go

.PHONY: all build vet test race check bench clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: vet, a full build, and the test suite under
# the race detector. Run it before every merge; CI and reviewers assume it
# is green.
check: vet build race

# bench compiles and smoke-runs every benchmark once (not a measurement run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
	rm -rf bin
