# Pre-merge gate and developer conveniences. The repo is stdlib-only, so
# `go` is the only tool required.

GO ?= go

# Per-target budget for the fuzz-smoke pass. Long enough to exercise the
# mutator beyond the seed corpus, short enough for a pre-merge gate.
FUZZTIME ?= 10s

.PHONY: all build vet test race check bench bench-smoke fuzz-smoke crash-smoke clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is timeout-bounded so a cancellation or deadlock regression fails the
# gate instead of wedging it.
race:
	$(GO) test -race -timeout 10m ./...

# fuzz-smoke runs each fuzz target briefly. Go allows one -fuzz pattern per
# package invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadTrace$$' -fuzztime $(FUZZTIME) ./internal/proof/
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinaryTrace$$' -fuzztime $(FUZZTIME) ./internal/proof/
	$(GO) test -run '^$$' -fuzz '^FuzzParseCNF$$' -fuzztime $(FUZZTIME) ./internal/cnf/

# crash-smoke is the seeded kill-and-recover loop: the built CLIs are
# SIGKILLed at durable checkpoint appends and resumed until they finish, and
# the recovered artifacts must be byte-identical to an uninterrupted run.
# The journal-corruption matrix (truncated tail, bit flips, stale
# fingerprints, version skew) rides along from internal/faults.
crash-smoke:
	$(GO) test -run '^TestCrashRecoverMatrix$$|^TestCrashHookFiresAfterDurableAppend$$|^TestExitCodeInterruptedResume$$' -count=1 -v .
	$(GO) test -run '^TestJournalFault' -count=1 ./internal/faults/

# bench-smoke replays small pigeonhole/random proofs through every BCP
# engine and refreshes BENCH_bcp.json (propagations/sec, watcher-visits per
# check, and the incremental-vs-scratch ratios). Quick suite, so the numbers
# are a smoke reading, not the committed full-suite measurement — regenerate
# that with `go run ./cmd/bcpbench -iters 3 -out BENCH_bcp.json`.
bench-smoke:
	$(GO) run ./cmd/bcpbench -quick -iters 2 -out BENCH_bcp.json

# check is the pre-merge gate: vet, a full build, the test suite under the
# race detector, a short fuzz pass over the untrusted-input parsers, the
# kill-and-recover crash loop, and the BCP engine smoke benchmark. Run it
# before every merge; CI and reviewers assume it is green.
check: vet build race fuzz-smoke crash-smoke bench-smoke

# bench compiles and smoke-runs every benchmark once (not a measurement run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
	rm -rf bin
