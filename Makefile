# Pre-merge gate and developer conveniences. The repo is stdlib-only, so
# `go` is the only tool required.

GO ?= go

# Per-target budget for the fuzz-smoke pass. Long enough to exercise the
# mutator beyond the seed corpus, short enough for a pre-merge gate.
FUZZTIME ?= 10s

.PHONY: all build vet test race check bench bench-smoke bench-gate trace-smoke fuzz-smoke crash-smoke daemon-smoke lrat-smoke cluster-smoke par-smoke clean

# Scratch dir for gate artifacts that must not clobber committed baselines.
SCRATCH ?= .scratch

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race is timeout-bounded so a cancellation or deadlock regression fails the
# gate instead of wedging it.
race:
	$(GO) test -race -timeout 10m ./...

# fuzz-smoke runs each fuzz target briefly. Go allows one -fuzz pattern per
# package invocation, hence one line per target.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadTrace$$' -fuzztime $(FUZZTIME) ./internal/proof/
	$(GO) test -run '^$$' -fuzz '^FuzzReadBinaryTrace$$' -fuzztime $(FUZZTIME) ./internal/proof/
	$(GO) test -run '^$$' -fuzz '^FuzzParseCNF$$' -fuzztime $(FUZZTIME) ./internal/cnf/
	$(GO) test -run '^$$' -fuzz '^FuzzParseLRAT$$' -fuzztime $(FUZZTIME) ./internal/lrat/
	$(GO) test -run '^$$' -fuzz '^FuzzParseLRATBinary$$' -fuzztime $(FUZZTIME) ./internal/lrat/
	$(GO) test -run '^$$' -fuzz '^FuzzUpload$$' -fuzztime $(FUZZTIME) ./internal/service/
	$(GO) test -run '^$$' -fuzz '^FuzzRouterAdmission$$' -fuzztime $(FUZZTIME) ./internal/cluster/

# crash-smoke is the seeded kill-and-recover loop: the built CLIs are
# SIGKILLed at durable checkpoint appends and resumed until they finish, and
# the recovered artifacts must be byte-identical to an uninterrupted run.
# The journal-corruption matrix (truncated tail, bit flips, stale
# fingerprints, version skew) rides along from internal/faults.
crash-smoke:
	$(GO) test -run '^TestCrashRecoverMatrix$$|^TestCrashHookFiresAfterDurableAppend$$|^TestExitCodeInterruptedResume$$' -count=1 -v .
	$(GO) test -run '^TestJournalFault' -count=1 ./internal/faults/

# daemon-smoke is the service arm of the crash gate: dpvd SIGKILLs itself
# (same DPV_FAULT_CRASH_AFTER_APPENDS hook) with five jobs in flight, is
# restarted on the same store, and every recovered verdict must be
# byte-identical to an uninterrupted checkpointed dpv run; SIGTERM must then
# drain cleanly. The in-process daemon suite (queue/backpressure/tenant
# quotas/fault matrix) rides along.
daemon-smoke:
	$(GO) test -run '^TestDaemonKillAndRecover$$' -count=1 -v .
	$(GO) test -count=1 ./internal/service/

# lrat-smoke is the hinted-proof gate: the LRAT parser/checker unit suite,
# hint emission from both backward checkers (including byte-identical
# emission across checkpoint resume), and the adversarial hint-corruption +
# RUP-differential matrices. The emit -> lratcheck CLI round trip rides in
# crash-smoke; the service surface (proof.lrat persistence, GET /lrat,
# POST /recheck) rides in daemon-smoke.
lrat-smoke:
	$(GO) test -count=1 ./internal/lrat/
	$(GO) test -run 'LRAT' -count=1 ./internal/core/ ./internal/drat/
	$(GO) test -run '^TestLRAT|^TestApplyHints' -count=1 ./internal/faults/

# cluster-smoke is the multi-node arm of the gate: three dpvd shards behind
# one dpvrouter (R=2), six jobs admitted back to back, then SIGKILL the
# shard that owns most of them. Zero admitted jobs may be lost, every
# surviving verdict must be byte-identical to an uninterrupted single-node
# dpv run, and a replica offered a verdict with one flipped hint digit must
# answer a typed 422 and never ack. The in-process cluster suite (ring,
# hedged reads, breakers, failover, router fault matrix) rides along.
cluster-smoke:
	$(GO) test -run '^TestClusterKillShard$$' -count=1 -v .
	$(GO) test -count=1 ./internal/cluster/ ./internal/retry/

# par-smoke is the dependency-aware scheduling gate: the work-stealing
# scheduler's unit suite under the race detector, the DAG-vs-chunk-vs-
# sequential differential and resume-determinism matrices, and the CLI
# round trip (dpv/lratcheck -sched dag against -sched chunk and a
# sequential run, byte-compared).
par-smoke:
	$(GO) test -race -count=1 ./internal/sched/
	$(GO) test -race -run '^TestVerifyDAG|^TestDAGCheckpoint|^TestResolveWorkersDAG$$' -count=1 ./internal/core/
	$(GO) test -race -run '^TestCheckDAG|^TestReplayer|^TestBuildDAG' -count=1 ./internal/lrat/
	$(GO) test -run '^TestParSmoke$$' -count=1 -v .

# bench-smoke replays small pigeonhole/random proofs through every BCP
# engine (propagations/sec, watcher-visits per check, and the
# incremental-vs-scratch ratios). Quick suite, written to scratch — the
# committed BENCH_bcp.json baseline is only ever refreshed deliberately,
# with `go run ./cmd/bcpbench -iters 3 -out BENCH_bcp.json`.
bench-smoke:
	@mkdir -p $(SCRATCH)
	$(GO) run ./cmd/bcpbench -quick -iters 2 -out $(SCRATCH)/BENCH_bcp.json

# bench-gate is the perf-regression gate: a fresh quick benchmark run is
# diffed against the committed full-suite baseline. Deterministic per-check
# work (watcher visits / check) is gated per instance at 15%; wall-clock
# throughput (props/sec) only on the suite aggregate, at twice the
# tolerance and above a wall-time noise floor, so timer noise cannot fail
# the gate.
bench-gate:
	@mkdir -p $(SCRATCH)
	$(GO) run ./cmd/bcpbench -quick -iters 3 -out $(SCRATCH)/BENCH_fresh.json
	$(GO) run ./cmd/benchdiff -tol 0.15 BENCH_bcp.json $(SCRATCH)/BENCH_fresh.json
	$(GO) run ./cmd/bcpbench -lrat -quick -iters 3 -out $(SCRATCH)/BENCH_lrat_fresh.json
	$(GO) run ./cmd/benchdiff -lrat -tol 0.15 BENCH_lrat.json $(SCRATCH)/BENCH_lrat_fresh.json
	$(GO) run ./cmd/parbench -quick -iters 3 -o $(SCRATCH)/BENCH_par_fresh.json
	$(GO) run ./cmd/benchdiff -par -tol 0.15 BENCH_par.json $(SCRATCH)/BENCH_par_fresh.json

# trace-smoke emits a flight recording from a real verification, parses it
# back and validates the span tree (see trace_roundtrip_test.go), then
# measures recorder overhead over the bench suite. The design budget is <3%
# (per-Refute emission is ~100ns, see BenchmarkCounterPair), but suite
# wall-clock on a shared machine is ±5% noise even with paired-median
# sampling — so the gate enforces 10%: loose enough that timer noise cannot
# fail it, tight enough to catch an accidental per-propagation emission
# (which measures at +50% or worse).
trace-smoke:
	$(GO) test -run '^TestTraceRoundtrip' -count=1 .
	$(GO) run ./cmd/bcpbench -trace-overhead -iters 5 -overhead-budget 10

# check is the pre-merge gate: vet, a full build, the test suite under the
# race detector, a short fuzz pass over the untrusted-input parsers and the
# admission gates (daemon and router), the kill-and-recover crash loops
# (CLI, daemon, and cluster kill-a-shard), the hinted-proof (LRAT) gate,
# the dependency-aware scheduling gate, the trace roundtrip + overhead
# smoke, and the benchmark perf-regression gate (BCP engines, hinted
# re-check throughput, and the chunk-vs-DAG schedule). Run it before every
# merge; CI and reviewers assume it is green.
check: vet build race fuzz-smoke crash-smoke daemon-smoke lrat-smoke cluster-smoke par-smoke trace-smoke bench-gate

# bench compiles and smoke-runs every benchmark once (not a measurement run).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

clean:
	$(GO) clean ./...
	rm -rf bin
